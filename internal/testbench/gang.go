package testbench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/serve/faultinject"
	"repro/internal/sim"
	"repro/internal/verilog/ast"
)

// --- Fingerprint memo --------------------------------------------------------
//
// A compiled fingerprint run is a pure function of (Design, Stimulus): the
// design fixes behavior, the stimulus fixes drives, and FPTrace records
// nothing else. Both keys are process-wide cached objects (sim.DefaultCache,
// the stimulus memo), so identical pairs recur constantly — the same
// candidate ranked under three pipeline variants, verified against the same
// dense stimulus across runs, re-simulated per bench iteration. The memo is
// single-flight (claim/publish/wait) so concurrent gangs and solo runs never
// duplicate a run, and LRU-bounded with in-flight entries pinned, following
// the discipline of the compile and bind caches.

type fpKey struct {
	d  *sim.Design
	st *Stimulus
}

// fpEntry is one single-flight memo slot. claim marks the caller as the
// computing owner; publish warms the trace's lazy whole-run fingerprint
// (after which the shared FPTrace is read-only) and releases waiters;
// abort releases an unfulfilled claim — the owner was cancelled or crashed
// before producing a result — waking waiters so one of them can adopt the
// claim and compute instead. An entry is therefore never poisoned: it is
// either unclaimed, claimed by a live computing goroutine, or published.
//
// The slot is also its own LRU node (prev/next under fpMu) and allocates its
// wakeup channel only when a waiter actually blocks: a memo-cold ranking call
// inserts dozens of entries per batch and almost never races another claimant
// for the same key, so the common miss costs one allocation, not four.
type fpEntry struct {
	key      fpKey
	claimed  atomic.Bool
	finished atomic.Bool
	ready    chan struct{} // created under fpMu by the first blocked waiter
	tr       *FPTrace
	prev     *fpEntry // LRU list links, guarded by fpMu
	next     *fpEntry
}

func (e *fpEntry) claim() bool { return e.claimed.CompareAndSwap(false, true) }

func (e *fpEntry) publish(tr *FPTrace) {
	tr.Fingerprint()
	e.tr = tr
	e.finished.Store(true)
	fpMu.Lock()
	ready := e.ready
	e.ready = nil
	fpMu.Unlock()
	if ready != nil {
		close(ready)
	}
}

// abort releases the caller's claim without publishing: the entry returns
// to the unclaimed state and any blocked waiters wake to race for the
// claim themselves. A cancelled or crashed run must leave the memo exactly
// as it found it, so the next job recomputes and gets a bit-identical
// clean result.
func (e *fpEntry) abort() {
	fpMu.Lock()
	ready := e.ready
	e.ready = nil
	e.claimed.Store(false)
	fpMu.Unlock()
	if ready != nil {
		close(ready)
	}
}

// wait blocks until the entry publishes, its claim frees up, or ctx is
// cancelled. It returns (tr, false, nil) for a published trace;
// (nil, true, nil) when a previous owner aborted and this caller adopted
// the claim — the caller now owns the entry and must publish or abort it;
// and (nil, false, ctx.Err()) on cancellation, leaving the entry to its
// current owner.
func (e *fpEntry) wait(ctx context.Context) (*FPTrace, bool, error) {
	for {
		if e.finished.Load() {
			return e.tr, false, nil
		}
		if e.claim() {
			return nil, true, nil
		}
		fpMu.Lock()
		if e.finished.Load() {
			fpMu.Unlock()
			return e.tr, false, nil
		}
		if !e.claimed.Load() {
			fpMu.Unlock()
			continue // claim freed between checks: retry the CAS
		}
		if e.ready == nil {
			e.ready = make(chan struct{})
		}
		ready := e.ready
		fpMu.Unlock()
		select {
		case <-ready:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

func (e *fpEntry) done() bool { return e.finished.Load() }

var (
	fpMu   sync.Mutex
	fpMemo = make(map[fpKey]*fpEntry)
	// Intrusive LRU list of every memo entry, most recently used first.
	// Entries are their own nodes, so list maintenance allocates nothing.
	fpFront *fpEntry
	fpBack  *fpEntry
	fpLen   int
)

// fpUnlink detaches e from the LRU list. Callers hold fpMu.
func fpUnlink(e *fpEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		fpFront = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		fpBack = e.prev
	}
	e.prev, e.next = nil, nil
	fpLen--
}

// fpPushFront makes e the most recently used entry. Callers hold fpMu.
func fpPushFront(e *fpEntry) {
	e.prev, e.next = nil, fpFront
	if fpFront != nil {
		fpFront.prev = e
	}
	fpFront = e
	if fpBack == nil {
		fpBack = e
	}
	fpLen++
}

// DefaultFPMemoCap is the memory tier's default entry bound. A
// verification-grade FPTrace is a few hundred uint64s, so the memo tops
// out around a few megabytes; like the bind memo, its strong design keys
// pin at most one LRU's worth of designs.
const DefaultFPMemoCap = 4096

// fpMemoCap bounds retained traces; guarded by fpMu, sized by SetFPMemoCap.
var fpMemoCap = DefaultFPMemoCap

// SetFPMemoCap sizes the in-process fingerprint memo — tier 1 of the
// result store — and returns the previous capacity. Values <= 0 restore
// DefaultFPMemoCap. Shrinking evicts finished entries down to the new cap
// immediately (in-flight runs stay pinned, exactly like normal eviction).
func SetFPMemoCap(n int) int {
	if n <= 0 {
		n = DefaultFPMemoCap
	}
	fpMu.Lock()
	defer fpMu.Unlock()
	prev := fpMemoCap
	fpMemoCap = n
	fpEvictLocked()
	return prev
}

// FPMemoLen reports the memo's current entry count (ops introspection).
func FPMemoLen() int {
	fpMu.Lock()
	defer fpMu.Unlock()
	return fpLen
}

// fpEvictLocked drops least-recently-used finished entries until the memo
// fits its cap. Entries whose run is still in flight are skipped: evicting
// them would orphan waiters. Callers hold fpMu.
func fpEvictLocked() {
	for fpLen > fpMemoCap {
		oldest := fpBack
		for oldest != nil && !oldest.done() {
			oldest = oldest.prev
		}
		if oldest == nil {
			break
		}
		fpUnlink(oldest)
		delete(fpMemo, oldest.key)
	}
}

// fpClaim returns the memo entry for (d, st), inserting a fresh unclaimed
// one on a miss. Eviction skips entries whose run is still in flight.
func fpClaim(d *sim.Design, st *Stimulus) *fpEntry {
	key := fpKey{d: d, st: st}
	fpMu.Lock()
	defer fpMu.Unlock()
	if e, hit := fpMemo[key]; hit {
		if fpFront != e {
			fpUnlink(e)
			fpPushFront(e)
		}
		return e
	}
	e := &fpEntry{key: key}
	fpMemo[key] = e
	fpPushFront(e)
	fpEvictLocked()
	return e
}

// --- Gang runs ---------------------------------------------------------------

// gangLane is one candidate slot of a gang run: source and compiled design
// in, fingerprint trace out.
type gangLane struct {
	src *ast.Source
	d   *sim.Design
	e   *fpEntry // nil when the caller bypasses the memo (tests)
	tr  *FPTrace
}

// GangMode selects the gang execution model.
type GangMode int

const (
	// GangSoA shares one pair of struct-of-arrays planes across all lanes
	// and runs delta-matched processes as a single gang program (sim.SoAGang).
	// The default.
	GangSoA GangMode = iota
	// GangPerLane gives every lane a private engine (sim.Gang) — the PR 6
	// model, kept as an escape hatch and differential referee.
	GangPerLane
)

// laneGang is the common surface of the two gang execution models.
type laneGang interface {
	AddLane(d *sim.Design, en *sim.Engine, clock int, ins, outs []int) int
	LiveLanes() int
	Err(id int) error
	Hash(id int) uint64
	BeginCase()
	EndCase()
	Drive(pos int, v sim.Value)
	Advance()
	HashOutput(col, width int)
	Close()
}

// RunFingerprintGang is RunFingerprint over a batch of candidates sharing
// one stimulus: every result is bit-identical to the solo run of the same
// source, but all memo-missing candidates advance in lockstep through one
// schedule decode. base, when non-nil, seeds delta compilation;
// when nil, the batch's first successfully compiled design becomes the base
// for the rest (candidates of one task are mutants of a common ancestor, so
// layouts frequently match). Interpreter runs, compile failures, irregular
// stimuli and failed bindings all take the solo path for the affected
// candidate, preserving its exact legacy behavior. Runs in the default
// GangSoA mode; RunFingerprintGangMode selects explicitly.
func RunFingerprintGang(srcs []*ast.Source, top string, st *Stimulus, backend Backend, base *sim.Design) []*FPTrace {
	return RunFingerprintGangMode(srcs, top, st, backend, base, GangSoA)
}

// RunFingerprintGangMode is RunFingerprintGang with an explicit gang
// execution model.
func RunFingerprintGangMode(srcs []*ast.Source, top string, st *Stimulus, backend Backend, base *sim.Design, mode GangMode) []*FPTrace {
	out, err := RunFingerprintGangModeCtx(context.Background(), srcs, top, st, backend, base, mode)
	if err != nil {
		// Unreachable with a background context: the only errors the ctx
		// variant returns are the context's own.
		panic(err)
	}
	return out
}

// RunFingerprintGangCtx is RunFingerprintGang under a cancellable context:
// the run observes ctx between test cases and between lanes, so a cancel
// lands within one case's worth of simulation. On cancellation it returns
// ctx's error, aborting (never publishing) the memo claims of unfinished
// lanes so the next job recomputes them to bit-identical results.
func RunFingerprintGangCtx(ctx context.Context, srcs []*ast.Source, top string, st *Stimulus, backend Backend, base *sim.Design) ([]*FPTrace, error) {
	return RunFingerprintGangModeCtx(ctx, srcs, top, st, backend, base, GangSoA)
}

// RunFingerprintGangModeCtx is RunFingerprintGangCtx with an explicit gang
// execution model. A panic inside the lockstep walk never escapes: the
// crashed walk's unresolved lanes are re-run solo, where a lane that
// crashes again resolves to a per-candidate ErrSimPanic trace and every
// other lane reproduces its bit-identical clean result.
func RunFingerprintGangModeCtx(ctx context.Context, srcs []*ast.Source, top string, st *Stimulus, backend Backend, base *sim.Design, mode GangMode) ([]*FPTrace, error) {
	out := make([]*FPTrace, len(srcs))
	if len(srcs) == 0 {
		return out, nil
	}
	if backend == BackendInterpreter {
		for i, src := range srcs {
			tr, err := runFingerprintSoloCtx(ctx, src, top, st, backend)
			if err != nil {
				return nil, err
			}
			out[i] = tr
		}
		return out, nil
	}
	type waiter struct {
		i int
		e *fpEntry
	}
	var waits []waiter
	lanes := make([]gangLane, 0, len(srcs))
	laneIdx := make([]int, 0, len(srcs))
	for i, src := range srcs {
		d, err := sim.CompileDeltaCached(base, src, top)
		if err != nil {
			tr, serr := runFingerprintSoloCtx(ctx, src, top, st, backend)
			if serr != nil {
				abortLanes(lanes)
				return nil, serr
			}
			out[i] = tr
			continue
		}
		if base == nil {
			base = d
		}
		e := fpClaim(d, st)
		if !e.claim() {
			// Resolved, or in flight elsewhere — possibly by an earlier
			// lane of this very batch (duplicate designs). Collect after
			// the gang runs so intra-batch duplicates cannot deadlock.
			waits = append(waits, waiter{i: i, e: e})
			continue
		}
		// The claim is this key's single flight across tiers: consult the
		// persistent store before the lane joins a gang, so a warm store
		// keeps the candidate out of the lockstep walk entirely.
		if tr := storeLookup(ctx, d, st); tr != nil {
			e.publish(tr)
			out[i] = tr
			continue
		}
		lanes = append(lanes, gangLane{src: src, d: d, e: e})
		laneIdx = append(laneIdx, i)
	}
	if err := runGangLanesCtx(ctx, lanes, top, st, backend, base, mode); err != nil {
		abortLanes(lanes)
		return nil, err
	}
	for k := range lanes {
		out[laneIdx[k]] = lanes[k].tr
		// Lanes whose entry published (clean runs and deterministic
		// errors; never ErrSimPanic aborts) flow through to the store.
		if lanes[k].tr != nil && lanes[k].e != nil && lanes[k].e.done() {
			storePut(ctx, lanes[k].d, st, lanes[k].tr)
		}
	}
	for _, w := range waits {
		tr, adopted, err := w.e.wait(ctx)
		if err != nil {
			return nil, err
		}
		if adopted {
			// The claim's previous owner aborted (cancelled or crashed
			// elsewhere); this batch inherits the slot and computes solo.
			if tr, err = runFingerprintOwned(ctx, w.e, srcs[w.i], top, st, backend); err != nil {
				return nil, err
			}
		}
		out[w.i] = tr
	}
	return out, nil
}

// abortLanes releases the memo claims of every unresolved lane after a
// cancelled batch. Lanes that already finished keep their published
// entries (they are complete, valid results).
func abortLanes(lanes []gangLane) {
	for k := range lanes {
		if lanes[k].tr == nil && lanes[k].e != nil {
			lanes[k].e.abort()
		}
	}
}

// finishLane resolves a lane: crash traces are returned to this job only
// (their memo claim aborts, keeping the memo clean for a retry), anything
// else — clean runs and deterministic runtime errors alike — publishes.
func finishLane(ln *gangLane, tr *FPTrace) {
	ln.tr = tr
	if ln.e == nil {
		return
	}
	if tr.Err != nil && errors.Is(tr.Err, ErrSimPanic) {
		ln.e.abort()
	} else {
		ln.e.publish(tr)
	}
}

// runGangLanes is runGangLanesCtx without cancellation (tests drive it
// directly with memo-bypassing lanes).
func runGangLanes(lanes []gangLane, top string, st *Stimulus, backend Backend, base *sim.Design, mode GangMode) {
	if err := runGangLanesCtx(context.Background(), lanes, top, st, backend, base, mode); err != nil {
		panic(err) // unreachable: a background context never cancels
	}
}

// runGangLanesCtx computes lanes[k].tr for every lane, publishing each
// lane's memo entry (when present) as it resolves. Lanes that cannot join
// the lockstep run — no schedule, or a binding failure — fall back to the
// solo path, which reproduces the name-keyed behavior byte-for-byte. The
// walk observes ctx between test cases; on cancellation it returns the
// ctx error with unresolved lanes left untouched for the caller to abort.
// A panic anywhere in the lockstep walk is confined: every unresolved lane
// re-runs solo, isolating the crash to the candidate that caused it.
func runGangLanesCtx(ctx context.Context, lanes []gangLane, top string, st *Stimulus, backend Backend, base *sim.Design, mode GangMode) error {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: %v", errGangCrashed, r)
			}
		}()
		return runGangLockstep(ctx, lanes, top, st, backend, base, mode)
	}()
	if err == nil || !errors.Is(err, errGangCrashed) {
		return err // nil, or a context error the caller unwinds
	}
	// The lockstep walk crashed. Gang-vs-solo equivalence means every lane
	// untouched by the fault reproduces its result solo bit-for-bit, and
	// the faulty lane's own solo run converts the crash into its private
	// ErrSimPanic trace (runFingerprintSoloCtx recovers per candidate).
	for k := range lanes {
		if lanes[k].tr != nil {
			continue
		}
		tr, serr := runFingerprintSoloCtx(ctx, lanes[k].src, top, st, backend)
		if serr != nil {
			return serr
		}
		finishLane(&lanes[k], tr)
	}
	return nil
}

// errGangCrashed marks a recovered panic inside the lockstep gang walk; it
// never leaves runGangLanesCtx.
var errGangCrashed = errors.New("gang walk crashed")

// runGangLockstep is the lockstep walk proper: bind every lane, then drive
// all lanes through the shared schedule case by case.
func runGangLockstep(ctx context.Context, lanes []gangLane, top string, st *Stimulus, backend Backend, base *sim.Design, mode GangMode) error {
	sched := st.schedule()

	var g laneGang
	if mode == GangPerLane {
		g = sim.NewGang(len(lanes))
	} else {
		g = sim.NewSoAGang(len(lanes), base)
	}
	gangOf := make([]int, 0, len(lanes)) // gang lane id -> lanes index
	seq := st.Ifc.Sequential()
	for li := range lanes {
		ln := &lanes[li]
		if sched == nil {
			tr, err := runFingerprintSoloCtx(ctx, ln.src, top, st, backend)
			if err != nil {
				return err
			}
			finishLane(ln, tr)
			continue
		}
		en := ln.d.AcquireEngine()
		b, ok := cachedBind(ln.d, sched, en, &st.Ifc)
		if !ok {
			ln.d.ReleaseEngine(en)
			tr, err := runFingerprintSoloCtx(ctx, ln.src, top, st, backend)
			if err != nil {
				return err
			}
			finishLane(ln, tr)
			continue
		}
		if seq {
			// Sequential cases each get a fresh engine (BeginCase); the
			// probe engine only served handle resolution.
			ln.d.ReleaseEngine(en)
			en = nil
		}
		g.AddLane(ln.d, en, b.clock, b.ins, b.outs)
		gangOf = append(gangOf, li)
		statSims.Add(1) // one fingerprint simulation per gang lane
	}
	if len(gangOf) == 0 {
		return nil
	}

	// Fault-injection keys are derived only while a drill is armed: the
	// canonical hash identifies a lane's candidate across gang and solo
	// runs, so a drill can target one candidate deterministically.
	var fiKeys []string
	if faultinject.Enabled() {
		fiKeys = make([]string, len(gangOf))
		for k, li := range gangOf {
			fiKeys[k] = sim.CanonicalKey(lanes[li].src)
		}
	}

	// One backing block for every lane's per-case fingerprints: the lane
	// count and case count are both fixed here, so n+1 small slices flatten
	// to two allocations.
	caseFPs := make([][]uint64, len(gangOf))
	fpBlock := make([]uint64, len(gangOf)*len(st.Cases))
	for k := range caseFPs {
		caseFPs[k] = fpBlock[k*len(st.Cases) : k*len(st.Cases) : (k+1)*len(st.Cases)]
	}
	for ci := range st.Cases {
		// The per-case check bounds how long a cancel can go unobserved:
		// one case, tens of steps.
		if err := ctx.Err(); err != nil {
			return err
		}
		if g.LiveLanes() == 0 {
			break
		}
		if fiKeys != nil {
			for k := range gangOf {
				if g.Err(k) == nil {
					faultinject.Fire(faultinject.PointSimCase, fiKeys[k])
				}
			}
		}
		g.BeginCase()
		nSteps := int(sched.stepOff[ci+1] - sched.stepOff[ci])
		off := int(sched.stepOff[ci]) * sched.rowWords
		for si := 0; si < nSteps; si++ {
			// Decode the step row once; broadcast each value to all lanes.
			for pos := range sched.names {
				nw := int(sched.wordsOf[pos])
				g.Drive(pos, sim.ValueView(int(sched.widths[pos]), sched.val[off:off+nw], sched.xz[off:off+nw]))
				off += nw
			}
			g.Advance()
			for oi := range st.Ifc.Outputs {
				g.HashOutput(oi, st.Ifc.Outputs[oi].Width)
			}
		}
		g.EndCase()
		// Gang lane ids are assigned in AddLane order, so id == k. A lane
		// records the case fingerprint only if it survived the whole case,
		// exactly like the solo per-case append.
		for k := range gangOf {
			if g.Err(k) == nil {
				caseFPs[k] = append(caseFPs[k], g.Hash(k))
			}
		}
	}
	for k, li := range gangOf {
		ln := &lanes[li]
		tr := &FPTrace{Ifc: st.Ifc, CaseFPs: caseFPs[k]}
		if err := g.Err(k); err != nil {
			tr.Err = fmt.Errorf("%w: %v", ErrRun, err)
		}
		finishLane(ln, tr)
	}
	// Close only after the last Err/Hash read: a closed SoA gang recycles
	// its lane tables and scratch through the gang pool.
	g.Close()
	return nil
}
