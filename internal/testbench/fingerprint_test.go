package testbench

import (
	"hash/fnv"
	"testing"

	"repro/internal/verilog/parser"
)

// refCaseFingerprint is the original hash/fnv implementation of
// CaseTrace.Fingerprint, kept as the reference the inline FNV and the
// streaming path must keep matching.
func refCaseFingerprint(ct *CaseTrace) uint64 {
	h := fnv.New64a()
	for _, s := range ct.Steps {
		for _, o := range s.Outputs {
			_, _ = h.Write([]byte(o))
			_, _ = h.Write([]byte{'\n'})
		}
	}
	return h.Sum64()
}

// refTraceFingerprint mirrors the original Trace.Fingerprint.
func refTraceFingerprint(t *Trace) uint64 {
	h := fnv.New64a()
	if t.Err != nil {
		_, _ = h.Write([]byte("ERR:" + t.Err.Error()))
		return h.Sum64()
	}
	for i := range t.Cases {
		var buf [8]byte
		fp := refCaseFingerprint(&t.Cases[i])
		for j := range buf {
			buf[j] = byte(fp >> (8 * uint(j)))
		}
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// xzSrc produces x bits (uninitialized reg read combinationally) so the
// four-state rendering shows up in fingerprints.
const xzSrc = `
module top_module (
    input [1:0] a,
    input b,
    output [1:0] y
);
    reg u;
    assign y = {u, a[0] ^ b};
endmodule
`

func fpSources(t *testing.T) []string {
	t.Helper()
	return []string{xorSrc, orSrc, xzSrc}
}

// TestInlineFNVMatchesStdlib pins the inline FNV-1a fold (and the memoized
// fingerprints built on it) to hash/fnv on real traces.
func TestInlineFNVMatchesStdlib(t *testing.T) {
	g := NewGenerator(21)
	st := g.Ranking(combIfc())
	for _, src := range fpSources(t) {
		parsed, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		tr := Run(parsed, "top_module", st)
		if tr.Err != nil {
			t.Fatalf("run: %v", tr.Err)
		}
		if got, want := tr.Fingerprint(), refTraceFingerprint(tr); got != want {
			t.Fatalf("trace fingerprint %#x != stdlib fnv %#x", got, want)
		}
		for i := range tr.Cases {
			if got, want := tr.Cases[i].Fingerprint(), refCaseFingerprint(&tr.Cases[i]); got != want {
				t.Fatalf("case %d fingerprint %#x != stdlib fnv %#x", i, got, want)
			}
		}
		// Memoized second read returns the same value.
		if tr.Fingerprint() != refTraceFingerprint(tr) {
			t.Fatal("memoized fingerprint diverged")
		}
	}
}

// TestRunFingerprintMatchesTrace asserts the streaming path produces the
// exact per-case and whole-run fingerprints of the printed trace, on both
// backends, including four-state outputs.
func TestRunFingerprintMatchesTrace(t *testing.T) {
	g := NewGenerator(33)
	st := g.Ranking(combIfc())
	for _, src := range fpSources(t) {
		parsed, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []Backend{BackendCompiled, BackendInterpreter} {
			tr := RunBackend(parsed, "top_module", st, backend)
			fp := RunFingerprint(parsed, "top_module", st, backend)
			if (tr.Err == nil) != (fp.Err == nil) {
				t.Fatalf("%s: error divergence: trace=%v fp=%v", backend, tr.Err, fp.Err)
			}
			if tr.Err != nil {
				continue
			}
			if len(fp.CaseFPs) != len(tr.Cases) {
				t.Fatalf("%s: case count %d != %d", backend, len(fp.CaseFPs), len(tr.Cases))
			}
			for i := range tr.Cases {
				if fp.CaseFPs[i] != tr.Cases[i].Fingerprint() {
					t.Fatalf("%s: case %d fingerprint diverges", backend, i)
				}
			}
			if fp.Fingerprint() != tr.Fingerprint() {
				t.Fatalf("%s: whole-run fingerprint diverges", backend)
			}
			if ffp := tr.FP(); !FPAgrees(fp, ffp) || ffp.Fingerprint() != fp.Fingerprint() {
				t.Fatalf("%s: Trace.FP() view disagrees with RunFingerprint", backend)
			}
		}
	}
}

// TestRunFingerprintSequential covers the clocked per-case-fresh-instance
// path.
func TestRunFingerprintSequential(t *testing.T) {
	const src = `
module top_module (
    input clk,
    input reset,
    input [3:0] d,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset) q <= 4'd0;
        else q <= q + d;
    end
endmodule
`
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifc := Interface{
		Inputs:  []PortSpec{{Name: "clk", Width: 1}, {Name: "reset", Width: 1}, {Name: "d", Width: 4}},
		Outputs: []PortSpec{{Name: "q", Width: 4}},
		Clock:   "clk",
		Reset:   "reset",
	}
	st := NewGenerator(7).Ranking(ifc)
	for _, backend := range []Backend{BackendCompiled, BackendInterpreter} {
		tr := RunBackend(parsed, "top_module", st, backend)
		fp := RunFingerprint(parsed, "top_module", st, backend)
		if tr.Err != nil || fp.Err != nil {
			t.Fatalf("%s: run errors: %v / %v", backend, tr.Err, fp.Err)
		}
		if fp.Fingerprint() != tr.Fingerprint() {
			t.Fatalf("%s: sequential fingerprint diverges", backend)
		}
	}
}

// TestRunFingerprintRecordsErrors asserts errored runs fold identically into
// both representations: same messages, same fingerprints, and agreement only
// between identical failures.
func TestRunFingerprintRecordsErrors(t *testing.T) {
	badAst, err := parser.Parse(`
module top_module (
    input en,
    output y
);
    wire w;
    assign w = en ? ~w : 1'b0;
    assign y = w;
endmodule
`)
	if err != nil {
		t.Fatal(err)
	}
	ifc := Interface{
		Inputs:  []PortSpec{{Name: "en", Width: 1}},
		Outputs: []PortSpec{{Name: "y", Width: 1}},
	}
	st := NewGenerator(3).Ranking(ifc)
	tr := Run(badAst, "top_module", st)
	fp := RunFingerprint(badAst, "top_module", st, BackendCompiled)
	if tr.Err == nil || fp.Err == nil {
		t.Fatalf("expected runtime failure, got trace=%v fp=%v", tr.Err, fp.Err)
	}
	if tr.Err.Error() != fp.Err.Error() {
		t.Fatalf("error messages diverge: %q vs %q", tr.Err, fp.Err)
	}
	if tr.Fingerprint() != fp.Fingerprint() {
		t.Fatal("error fingerprints diverge")
	}
	if !FPAgrees(fp, tr.FP()) {
		t.Fatal("identical failures must agree")
	}
	okAst, err := parser.Parse(orSrc)
	if err != nil {
		t.Fatal(err)
	}
	okFP := RunFingerprint(okAst, "top_module", NewGenerator(3).Ranking(combIfc()), BackendCompiled)
	if FPAgrees(fp, okFP) {
		t.Fatal("errored run must not agree with a clean run")
	}
}

// TestFPCaseAgreesMirrorsCaseAgrees cross-checks the two agreement helpers
// on designs that differ on a strict subset of cases.
func TestFPCaseAgreesMirrorsCaseAgrees(t *testing.T) {
	st := NewGenerator(9).Ranking(combIfc())
	xorAst, err := parser.Parse(xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	orAst, err := parser.Parse(orSrc)
	if err != nil {
		t.Fatal(err)
	}
	trX, trO := Run(xorAst, "top_module", st), Run(orAst, "top_module", st)
	fpX := RunFingerprint(xorAst, "top_module", st, BackendCompiled)
	fpO := RunFingerprint(orAst, "top_module", st, BackendCompiled)
	if Agrees(trX, trO) != FPAgrees(fpX, fpO) {
		t.Fatal("whole-run agreement diverges between paths")
	}
	for i := range st.Cases {
		if CaseAgrees(trX, trO, i) != FPCaseAgrees(fpX, fpO, i) {
			t.Fatalf("case %d agreement diverges between paths", i)
		}
	}
}
