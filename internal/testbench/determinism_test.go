package testbench

import (
	"sync"
	"testing"
)

// stimulusDigest folds every generated stimulus value (in case/step/drive
// order) into one FNV-1a hash — a stable identity for the whole stream.
func stimulusDigest(st *Stimulus) uint64 {
	h := fnvOffset64
	for ci := range st.Cases {
		for si := range st.Cases[ci].Steps {
			step := &st.Cases[ci].Steps[si]
			for _, name := range step.driveOrder() {
				h = fnvString(h, name)
				h = fnvByte(h, '=')
				h = fnvString(h, step.Inputs[name].String())
				h = fnvByte(h, '\n')
			}
		}
	}
	return h
}

// Locked digests of the generator's output for fixed (seed, interface)
// pairs. These pin the xrng-driven stimulus byte stream: a refactor that
// shifts the stream (reordered draws, a different RNG, changed generation
// structure) regenerates every trace in every experiment, so it must fail
// loudly here, not silently re-tune the artifacts.
const (
	lockedSeqRankingDigest  = 0xce2ee02cd2492aac
	lockedSeqVerifyDigest   = 0x856e3a080f78bc03
	lockedCombRankingDigest = 0xac6bfbbd8285105d
)

// TestStimulusStreamLocked is the stimulus-stream determinism golden: the
// generator must reproduce the locked streams exactly, and regeneration must
// be bit-identical (including across concurrent generations, which is how
// ranking workers consume cached stimuli).
func TestStimulusStreamLocked(t *testing.T) {
	seqRank := NewGenerator(42).Ranking(seqIfc())
	if got := stimulusDigest(seqRank); got != lockedSeqRankingDigest {
		t.Errorf("sequential ranking stimulus digest = %#x, want %#x", got, uint64(lockedSeqRankingDigest))
	}
	seqVerify := NewGenerator(42).Verification(seqIfc())
	if got := stimulusDigest(seqVerify); got != lockedSeqVerifyDigest {
		t.Errorf("sequential verification stimulus digest = %#x, want %#x", got, uint64(lockedSeqVerifyDigest))
	}
	combRank := NewGenerator(7).Ranking(combIfc())
	if got := stimulusDigest(combRank); got != lockedCombRankingDigest {
		t.Errorf("combinational ranking stimulus digest = %#x, want %#x", got, uint64(lockedCombRankingDigest))
	}

	// Regeneration, including concurrent, is bit-identical.
	var wg sync.WaitGroup
	digests := make([]uint64, 8)
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			digests[i] = stimulusDigest(NewGenerator(42).Verification(seqIfc()))
		}(i)
	}
	wg.Wait()
	for i, d := range digests {
		if d != lockedSeqVerifyDigest {
			t.Fatalf("concurrent regeneration %d drifted: %#x", i, d)
		}
	}
}

// TestStimulusIdenticalAcrossBackendsAndWorkers: the stimulus a run consumes
// is independent of simulation backend and worker count — the cached
// stimulus object is literally shared, and its compiled schedule resolves to
// the same drive bytes everywhere. Fingerprints of the same design under the
// same stimulus must therefore agree across backends, and concurrent
// schedule use from many goroutines (the Workers path) must not perturb the
// stream.
func TestStimulusIdenticalAcrossBackendsAndWorkers(t *testing.T) {
	st := RankingCached(33, 0, seqIfc())
	if st2 := RankingCached(33, 0, seqIfc()); st2 != st {
		t.Fatal("cached stimulus not shared")
	}
	src := mustParse(t, schedSeqSrc4bitAdapter)
	want := RunFingerprint(src, "top_module", st, BackendCompiled)
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	interp := RunFingerprint(src, "top_module", st, BackendInterpreter)
	if !FPAgrees(want, interp) {
		t.Fatal("backends disagree under the shared stimulus")
	}
	// Simulate the ranking pool: many workers running the same stimulus
	// concurrently through the shared schedule.
	var wg sync.WaitGroup
	results := make([]*FPTrace, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := BackendCompiled
			if i%4 == 3 {
				backend = BackendInterpreter
			}
			results[i] = RunFingerprint(src, "top_module", st, backend)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !FPAgrees(want, r) {
			t.Fatalf("worker %d diverged", i)
		}
	}
}

// schedSeqSrc4bitAdapter matches seqIfc (d[3:0], q[3:0]).
const schedSeqSrc4bitAdapter = `
module top_module (
    input clk,
    input reset,
    input [3:0] d,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset) q <= 4'd0;
        else q <= q + d;
    end
endmodule
`
