package testbench

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/verilog/ast"
)

// gangSeqVariant is a functional mutant of schedSeqSrc (subtracts instead of
// accumulating), so the gang carries disagreeing lanes.
const gangSeqVariant = `
module top_module (
    input clk,
    input reset,
    input [4:0] d,
    output reg [4:0] q,
    output [4:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 5'd0;
        else q <= q - d;
    end
    assign inv = ~q;
endmodule
`

// gangSeqLoop oscillates: the combinational self-loop on inv fails every
// case, so the lane retires with a runtime error.
const gangSeqLoop = `
module top_module (
    input clk,
    input reset,
    input [4:0] d,
    output reg [4:0] q,
    output [4:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 5'd0;
        else q <= q + d;
    end
    assign inv = ~inv;
endmodule
`

// gangSeqMissingPort compiles but lacks the d input, so its binding fails
// and the lane must fall back to the solo path (identical error bytes).
const gangSeqMissingPort = `
module top_module (
    input clk,
    input reset,
    output reg [4:0] q,
    output [4:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 5'd0;
        else q <= q + 5'd1;
    end
    assign inv = ~q;
endmodule
`

const gangCombLoop = `
module top_module (
    input [1:0] a,
    input b,
    output [1:0] y
);
    assign y = ~y;
endmodule
`

// fpTraceEqual requires two fingerprint traces to agree exactly: error
// bytes, per-case fingerprints and the whole-run digest.
func fpTraceEqual(t *testing.T, label string, got, want *FPTrace) {
	t.Helper()
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("%s: error divergence: got %v, want %v", label, got.Err, want.Err)
	}
	if got.Err != nil && got.Err.Error() != want.Err.Error() {
		t.Fatalf("%s: error bytes differ: got %q, want %q", label, got.Err, want.Err)
	}
	if len(got.CaseFPs) != len(want.CaseFPs) {
		t.Fatalf("%s: case counts differ: %d vs %d", label, len(got.CaseFPs), len(want.CaseFPs))
	}
	for i := range got.CaseFPs {
		if got.CaseFPs[i] != want.CaseFPs[i] {
			t.Fatalf("%s: case %d fingerprint differs", label, i)
		}
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("%s: whole-run fingerprint differs", label)
	}
}

// gangModes enumerates both execution models for matrix tests.
var gangModes = []struct {
	name string
	mode GangMode
}{
	{"soa", GangSoA},
	{"perlane", GangPerLane},
}

// TestGangLanesMatchSolo drives runGangLanes (memo bypassed: nil fpEntry)
// against runFingerprintSolo for every lane kind the gang distinguishes —
// healthy lanes, a disagreeing mutant, a runtime-error lane that retires
// mid-gang, and a bind-failure lane that falls back to the solo path — on
// sequential and combinational interfaces, in both gang modes. A retiring
// lane must not perturb survivors: the surviving lanes' fingerprints are
// checked against solo runs that never saw the failed lane.
func TestGangLanesMatchSolo(t *testing.T) {
	for _, tc := range []struct {
		name string
		ifc  Interface
		srcs []string
	}{
		{"sequential", schedSeqIfc(), []string{schedSeqSrc, gangSeqVariant, gangSeqLoop, gangSeqMissingPort, schedSeqSrc}},
		{"combinational", combIfc(), []string{xorSrc, orSrc, gangCombLoop}},
	} {
		for _, gm := range gangModes {
			t.Run(tc.name+"/"+gm.name, func(t *testing.T) {
				st := NewGenerator(17).Ranking(tc.ifc)
				if st.schedule() == nil {
					t.Fatal("generated stimulus must be schedulable")
				}
				lanes := make([]gangLane, 0, len(tc.srcs))
				parsed := make([]*ast.Source, len(tc.srcs))
				for i, code := range tc.srcs {
					parsed[i] = mustParse(t, code)
					d, err := sim.CompileCached(parsed[i], "top_module")
					if err != nil {
						t.Fatalf("src %d: %v", i, err)
					}
					lanes = append(lanes, gangLane{src: parsed[i], d: d})
				}
				runGangLanes(lanes, "top_module", st, BackendCompiled, nil, gm.mode)
				for i := range lanes {
					solo := runFingerprintSolo(parsed[i], "top_module", st, BackendCompiled)
					fpTraceEqual(t, tc.name+"/lane", lanes[i].tr, solo)
				}
			})
		}
	}
}

// TestGangLanesIrregularStimulusFallsBack: with no schedule every lane must
// take the solo path and still match it, in both gang modes.
func TestGangLanesIrregularStimulusFallsBack(t *testing.T) {
	st := &Stimulus{
		Ifc: combIfc(),
		Cases: []Case{
			{Steps: []Step{{Inputs: map[string]sim.Value{"a": sim.NewKnown(2, 1), "b": sim.NewKnown(1, 0)}}}},
			{Steps: []Step{{Inputs: map[string]sim.Value{"a": sim.NewKnown(2, 3)}}}},
		},
	}
	if st.schedule() != nil {
		t.Fatal("irregular stimulus must not schedule")
	}
	src := mustParse(t, xorSrc)
	d, err := sim.CompileCached(src, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	for _, gm := range gangModes {
		lanes := []gangLane{{src: src, d: d}}
		runGangLanes(lanes, "top_module", st, BackendCompiled, nil, gm.mode)
		fpTraceEqual(t, "irregular/"+gm.name, lanes[0].tr, runFingerprintSolo(src, "top_module", st, BackendCompiled))
	}
}

// TestRunFingerprintGangMatchesSolo exercises the public batched entry point
// — memo, delta compilation, duplicate candidates, compile failures and
// interpreter delegation — against unmemoized solo runs.
func TestRunFingerprintGangMatchesSolo(t *testing.T) {
	golden := mustParse(t, schedSeqSrc)
	mutant := mustParse(t, gangSeqVariant)
	noTop := mustParse(t, `module not_top (input a, output y); assign y = a; endmodule`)
	srcs := []*ast.Source{golden, mutant, golden /* duplicate pointer */, noTop, mustParse(t, gangSeqLoop)}

	base, err := sim.CompileCached(golden, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		backend Backend
		base    *sim.Design
		mode    GangMode
	}{
		{"compiled-nobase", BackendCompiled, nil, GangSoA},
		{"compiled-goldenbase", BackendCompiled, base, GangSoA},
		{"compiled-nobase-perlane", BackendCompiled, nil, GangPerLane},
		{"compiled-goldenbase-perlane", BackendCompiled, base, GangPerLane},
		{"interpreter", BackendInterpreter, nil, GangSoA},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh stimulus value per subtest: a fresh pointer misses the
			// (design, stimulus) memo, so the gang really runs.
			st := NewGenerator(5).Ranking(schedSeqIfc())
			out := RunFingerprintGangMode(srcs, "top_module", st, tc.backend, tc.base, tc.mode)
			if len(out) != len(srcs) {
				t.Fatalf("result count %d, want %d", len(out), len(srcs))
			}
			for i, src := range srcs {
				fpTraceEqual(t, tc.name, out[i], runFingerprintSolo(src, "top_module", st, tc.backend))
			}
			if out[0].Fingerprint() != out[2].Fingerprint() {
				t.Error("duplicate candidates disagree")
			}
		})
	}
}

// TestRunFingerprintMemoConsistency: the memoized front door must return the
// same values as a fresh unmemoized run, and repeated calls share one trace.
func TestRunFingerprintMemoConsistency(t *testing.T) {
	src := mustParse(t, schedSeqSrc)
	st := NewGenerator(23).Ranking(schedSeqIfc())
	first := RunFingerprint(src, "top_module", st, BackendCompiled)
	second := RunFingerprint(src, "top_module", st, BackendCompiled)
	if first != second {
		t.Error("memoized run not shared across identical calls")
	}
	fpTraceEqual(t, "memo", first, runFingerprintSolo(src, "top_module", st, BackendCompiled))
}
