package testbench

// Persistent result-store integration. A compiled fingerprint run is a pure
// function of (design content, stimulus schedule content), so its FPTrace
// can be keyed by content hashes and reused across processes, restarts and
// machines. The in-process fpMemo (gang.go) stays tier 1: its single-flight
// claim is taken *before* the store is consulted, so a stampede on one key
// performs at most one store lookup and — on a miss — one simulation, with
// the result published to both the memo and the store. Store failures are
// never fatal: a broken or slow store degrades to simulation, and a
// panicking adapter is recovered here so it cannot take a ranking job down.
//
// What is persisted: clean traces and deterministic runtime errors (ErrRun),
// exactly the set the memo publishes. ErrSimPanic traces — transient
// crashes — are never written, mirroring the memo's abort discipline.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/resultstore"
	"repro/internal/sim"
)

// --- Active store ------------------------------------------------------------

type storeBox struct{ s resultstore.Store }

var curStore atomic.Pointer[storeBox]

// SetStore installs s as the process-wide persistent fingerprint store and
// returns the previous one (nil when none). Pass nil to disable. The store
// is read on every compiled fingerprint miss; install it at startup,
// before ranking traffic.
func SetStore(s resultstore.Store) resultstore.Store {
	var old *storeBox
	if s == nil {
		old = curStore.Swap(nil)
	} else {
		old = curStore.Swap(&storeBox{s: s})
	}
	if old == nil {
		return nil
	}
	return old.s
}

// ActiveStore returns the installed persistent store, or nil.
func ActiveStore() resultstore.Store {
	if b := curStore.Load(); b != nil {
		return b.s
	}
	return nil
}

// --- Counters ----------------------------------------------------------------

// StoreStats is a snapshot of the process-wide simulation/store counters.
// Sims counts fingerprint simulations actually performed (solo runs and
// gang lanes); a fully warm process — every result served from memo or
// store — reports zero. The cross-process determinism test and the
// warm-restart smoke assert on exactly that.
type StoreStats struct {
	Sims     uint64 `json:"fp_sims"`
	Hits     uint64 `json:"store_hits"`
	Misses   uint64 `json:"store_misses"`
	Puts     uint64 `json:"store_puts"`
	PutFails uint64 `json:"store_put_fails"`
	// Remote-tier resilience counters, mirrored from the resultstore
	// remote adapter: GET retries absorbed, breaker trips, and lookups
	// fast-failed while the circuit was open.
	RemoteRetries      uint64 `json:"remote_retries"`
	RemoteBreakerTrips uint64 `json:"remote_breaker_trips"`
	RemoteFastFails    uint64 `json:"remote_fast_fails"`
}

var (
	statSims     atomic.Uint64
	statHits     atomic.Uint64
	statMisses   atomic.Uint64
	statPuts     atomic.Uint64
	statPutFails atomic.Uint64
)

// ReadStoreStats snapshots the counters.
func ReadStoreStats() StoreStats {
	remote := resultstore.ReadRemoteStats()
	return StoreStats{
		Sims:               statSims.Load(),
		Hits:               statHits.Load(),
		Misses:             statMisses.Load(),
		Puts:               statPuts.Load(),
		PutFails:           statPutFails.Load(),
		RemoteRetries:      remote.Retries,
		RemoteBreakerTrips: remote.BreakerTrips,
		RemoteFastFails:    remote.FastFails,
	}
}

// ResetStoreStats zeroes the counters (tests and benchmarks).
func ResetStoreStats() {
	statSims.Store(0)
	statHits.Store(0)
	statMisses.Store(0)
	statPuts.Store(0)
	statPutFails.Store(0)
}

// --- Content keys ------------------------------------------------------------

// contentHash returns the stimulus's stable content hash: a hex SHA-256
// over the bound interface and the compiled schedule — names, widths, step
// layout, and both stimulus planes. It is "" for irregular stimuli (no
// compiled schedule), which therefore never touch the persistent store.
// Computed once per Stimulus; cached stimuli amortize it across every
// candidate and run that shares them.
func (st *Stimulus) contentHash() string {
	st.chashOnce.Do(func() {
		sched := st.schedule()
		if sched == nil {
			return
		}
		h := sha256.New()
		var scratch [8]byte
		wu64 := func(v uint64) {
			binary.LittleEndian.PutUint64(scratch[:], v)
			h.Write(scratch[:])
		}
		wstr := func(s string) {
			wu64(uint64(len(s)))
			h.Write([]byte(s))
		}
		wstr("vfocus-fpkey-v1")
		wstr(st.Ifc.Clock)
		wstr(st.Ifc.Reset)
		if st.Ifc.ResetActiveLow {
			wu64(1)
		} else {
			wu64(0)
		}
		wu64(uint64(len(st.Ifc.Inputs)))
		for _, p := range st.Ifc.Inputs {
			wstr(p.Name)
			wu64(uint64(p.Width))
		}
		wu64(uint64(len(st.Ifc.Outputs)))
		for _, p := range st.Ifc.Outputs {
			wstr(p.Name)
			wu64(uint64(p.Width))
		}
		wu64(uint64(len(sched.names)))
		for i, name := range sched.names {
			wstr(name)
			wu64(uint64(sched.widths[i]))
		}
		wu64(uint64(len(sched.stepOff)))
		for _, off := range sched.stepOff {
			wu64(uint64(off))
		}
		wu64(uint64(sched.rowWords))
		wu64(uint64(len(sched.val)))
		for _, w := range sched.val {
			wu64(w)
		}
		for _, w := range sched.xz {
			wu64(w)
		}
		st.chash = hex.EncodeToString(h.Sum(nil))
	})
	return st.chash
}

// storeKeyFor derives the persistent-store key for a (design, stimulus)
// pair, or ok=false when either side has no content address (design
// compiled outside the cache, irregular stimulus).
func storeKeyFor(d *sim.Design, st *Stimulus) (resultstore.Key, bool) {
	dh := d.CanonicalHash()
	if dh == "" {
		return resultstore.Key{}, false
	}
	sh := st.contentHash()
	if sh == "" {
		return resultstore.Key{}, false
	}
	return resultstore.Key{DesignHash: dh, ScheduleHash: sh}, true
}

// --- FPTrace wire codec -------------------------------------------------------

// Wire format (little-endian):
//
//	version u8, flags u8 (bit0 = has error, bit1 = error is ErrRun),
//	nCases u32, nCases x case-fingerprint u64, error message bytes.
//
// Integrity (checksums, atomicity) is the adapter's job; this layer only
// needs structural validation.
const fpWireVersion = 1

// storedRunErr reconstitutes a persisted deterministic run error. Agreement
// (FPAgrees) and clustering compare errors by message, and errors.Is must
// keep classifying it as ErrRun, so the decoded error preserves the exact
// original message and answers Is(ErrRun).
type storedRunErr struct{ msg string }

func (e *storedRunErr) Error() string { return e.msg }

// Is marks the decoded error as an ErrRun for errors.Is, matching the
// sentinel the original wrapped.
func (e *storedRunErr) Is(target error) bool { return target == ErrRun }

// encodeFPTrace serializes tr for the store, or nil for traces that must
// not be persisted (transient ErrSimPanic results).
func encodeFPTrace(tr *FPTrace) []byte {
	if tr == nil || (tr.Err != nil && errors.Is(tr.Err, ErrSimPanic)) {
		return nil
	}
	var flags byte
	var msg string
	if tr.Err != nil {
		flags |= 1
		if errors.Is(tr.Err, ErrRun) {
			flags |= 2
		}
		msg = tr.Err.Error()
	}
	buf := make([]byte, 0, 2+4+8*len(tr.CaseFPs)+len(msg))
	buf = append(buf, fpWireVersion, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tr.CaseFPs)))
	for _, fp := range tr.CaseFPs {
		buf = binary.LittleEndian.AppendUint64(buf, fp)
	}
	buf = append(buf, msg...)
	return buf
}

// decodeFPTrace parses a stored record back into a trace bound to ifc.
// Structural damage returns ok=false and the caller treats it as a miss.
func decodeFPTrace(data []byte, ifc Interface) (*FPTrace, bool) {
	if len(data) < 6 || data[0] != fpWireVersion || data[1]&^byte(3) != 0 {
		return nil, false
	}
	flags := data[1]
	n := int(binary.LittleEndian.Uint32(data[2:]))
	if n < 0 || len(data) < 6+8*n {
		return nil, false
	}
	tr := &FPTrace{Ifc: ifc, CaseFPs: make([]uint64, n)}
	for i := 0; i < n; i++ {
		tr.CaseFPs[i] = binary.LittleEndian.Uint64(data[6+8*i:])
	}
	if flags&1 != 0 {
		msg := string(data[6+8*n:])
		if flags&2 != 0 {
			tr.Err = &storedRunErr{msg: msg}
		} else {
			tr.Err = errors.New(msg)
		}
	} else if len(data) != 6+8*n {
		return nil, false
	}
	return tr, true
}

// --- Lookup / publish ---------------------------------------------------------

// storeLookup consults the persistent store for (d, st). It returns a
// decoded, publishable trace on a hit and nil otherwise. Adapter errors
// and panics degrade to a miss: the caller simply simulates.
func storeLookup(ctx context.Context, d *sim.Design, st *Stimulus) *FPTrace {
	box := curStore.Load()
	if box == nil {
		return nil
	}
	k, ok := storeKeyFor(d, st)
	if !ok {
		return nil
	}
	data, hit, err := func() (data []byte, hit bool, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("store get panicked: %v", r)
			}
		}()
		return box.s.Get(ctx, k)
	}()
	if err != nil || !hit {
		statMisses.Add(1)
		return nil
	}
	tr, ok := decodeFPTrace(data, st.Ifc)
	if !ok {
		// Structurally invalid despite the adapter's integrity checks
		// (e.g. a foreign writer): drop it and recompute.
		statMisses.Add(1)
		return nil
	}
	statHits.Add(1)
	return tr
}

// storePut publishes a just-computed trace to the persistent store,
// best-effort: errors and panics are counted, never surfaced — the run
// already has its result. Traces the memo would not publish (ErrSimPanic)
// are not persisted either.
func storePut(ctx context.Context, d *sim.Design, st *Stimulus, tr *FPTrace) {
	box := curStore.Load()
	if box == nil {
		return
	}
	data := encodeFPTrace(tr)
	if data == nil {
		return
	}
	k, ok := storeKeyFor(d, st)
	if !ok {
		return
	}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("store put panicked: %v", r)
			}
		}()
		return box.s.Put(ctx, k, data)
	}()
	if err != nil {
		statPutFails.Add(1)
		return
	}
	statPuts.Add(1)
}
