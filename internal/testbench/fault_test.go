package testbench

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/serve/faultinject"
	"repro/internal/sim"
	"repro/internal/verilog/ast"
)

// faultSrcs is the candidate mix the fault drills run: two healthy designs,
// a functional mutant, and a duplicate of the golden.
func faultSrcs(t *testing.T) []*ast.Source {
	t.Helper()
	golden := mustParse(t, schedSeqSrc)
	return []*ast.Source{golden, mustParse(t, gangSeqVariant), golden}
}

// TestGangPanicIsolatedToCandidate injects a simulator crash into exactly
// one candidate of a gang (sticky, so the solo re-run the gang falls back
// to crashes too). The faulty candidate must resolve to its own
// ErrSimPanic trace, every other lane must stay bit-identical to a clean
// solo run, and after disarming, a re-run of the whole batch must be
// bit-identical to a never-faulted run — the crash may not leave a
// poisoned or stale memo entry behind.
func TestGangPanicIsolatedToCandidate(t *testing.T) {
	defer faultinject.Reset()
	srcs := faultSrcs(t)
	victim := sim.CanonicalKey(srcs[1])
	st := NewGenerator(31).Ranking(schedSeqIfc())

	faultinject.ArmFrom(faultinject.PointSimCase, victim, 1, func() {
		panic("injected simulator crash")
	})
	out, err := RunFingerprintGangModeCtx(context.Background(), srcs, "top_module", st, BackendCompiled, nil, GangSoA)
	if err != nil {
		t.Fatalf("faulted batch returned batch-level error: %v", err)
	}
	if out[1].Err == nil || !errors.Is(out[1].Err, ErrSimPanic) {
		t.Fatalf("victim error = %v, want ErrSimPanic", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		fpTraceEqual(t, "faulted/survivor", out[i], runFingerprintSolo(srcs[i], "top_module", st, BackendCompiled))
	}

	faultinject.Reset()
	clean := RunFingerprintGangMode(srcs, "top_module", st, BackendCompiled, nil, GangSoA)
	for i := range srcs {
		fpTraceEqual(t, "post-fault rerun", clean[i], runFingerprintSolo(srcs[i], "top_module", st, BackendCompiled))
	}
	if clean[1].Err != nil {
		t.Fatalf("victim still failing after disarm: %v", clean[1].Err)
	}
}

// TestGangCancelAtCaseN cancels the batch context on the n-th simulated
// case. The batch must unwind with the context's error in bounded time,
// and the cancelled claims must be released: a clean re-run of the same
// batch recomputes every entry to bit-identical results.
func TestGangCancelAtCaseN(t *testing.T) {
	defer faultinject.Reset()
	srcs := faultSrcs(t)
	st := NewGenerator(37).Ranking(schedSeqIfc())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(faultinject.PointSimCase, "", 3, cancel)
	out, err := RunFingerprintGangModeCtx(ctx, srcs, "top_module", st, BackendCompiled, nil, GangSoA)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (out=%v), want context.Canceled", err, out)
	}

	faultinject.Reset()
	clean := RunFingerprintGangMode(srcs, "top_module", st, BackendCompiled, nil, GangSoA)
	for i := range srcs {
		fpTraceEqual(t, "post-cancel rerun", clean[i], runFingerprintSolo(srcs[i], "top_module", st, BackendCompiled))
	}
}

// TestMemoClaimReleasedUnderCancel runs one cancellable claimant against a
// crowd of waiters on the same (design, stimulus) memo entry, cancelling a
// context mid-simulation. Whichever goroutine holds the claim when the
// cancel lands must release it (abort), and every goroutine with a live
// context must still converge — by adoption or by waiting on the next
// owner — on the same clean trace, without deadlock (the -race test hangs
// if waiters are stranded). Run with -race.
func TestMemoClaimReleasedUnderCancel(t *testing.T) {
	defer faultinject.Reset()
	src := mustParse(t, schedSeqSrc)
	st := NewGenerator(41).Ranking(schedSeqIfc())
	want := runFingerprintSolo(src, "top_module", st, BackendCompiled)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(faultinject.PointSimCase, "", 2, cancel)

	const waiters = 8
	results := make([]*FPTrace, waiters)
	errs := make([]error, waiters)
	var cancelledErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, cancelledErr = RunFingerprintCtx(ctx, src, "top_module", st, BackendCompiled)
	}()
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunFingerprintCtx(context.Background(), src, "top_module", st, BackendCompiled)
		}(i)
	}
	wg.Wait()

	// The cancellable goroutine either finished before the cancel landed or
	// reports the context error; it must never report anything else.
	if cancelledErr != nil && !errors.Is(cancelledErr, context.Canceled) {
		t.Fatalf("cancelled claimant: %v", cancelledErr)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		fpTraceEqual(t, "waiter", results[i], want)
	}
}

// TestBindPanicDoesNotPoisonMemo crashes the single-flight binding
// resolution. The crash must surface as a per-candidate ErrSimPanic (the
// candidate's run dies, nobody else's), and the bind memo must drop the
// half-resolved entry: the next run re-binds and produces bit-identical
// clean results.
func TestBindPanicDoesNotPoisonMemo(t *testing.T) {
	defer faultinject.Reset()
	src := mustParse(t, schedSeqSrc)
	// The fault must land on a memo-cold binding, so the faulted stimulus
	// is built fresh; the reference below uses a second, identical-content
	// stimulus whose binding universe never saw the crash.
	st := NewGenerator(43).Ranking(schedSeqIfc())

	faultinject.Arm(faultinject.PointBind, "", 1, func() {
		panic("injected bind crash")
	})
	tr := runFingerprintSolo(src, "top_module", st, BackendCompiled)
	if tr.Err == nil || !errors.Is(tr.Err, ErrSimPanic) {
		t.Fatalf("faulted bind error = %v, want ErrSimPanic", tr.Err)
	}

	faultinject.Reset()
	want := runFingerprintSolo(src, "top_module", NewGenerator(43).Ranking(schedSeqIfc()), BackendCompiled)
	fpTraceEqual(t, "post-bind-crash", runFingerprintSolo(src, "top_module", st, BackendCompiled), want)
}

// TestGangBindPanicFallsBackSolo crashes the bind once during a gang run:
// the gang walk dies, the solo fallback re-binds cleanly (the one-shot arm
// is spent and the entry was dropped), and every lane must come out
// bit-identical to an unfaulted solo run.
func TestGangBindPanicFallsBackSolo(t *testing.T) {
	defer faultinject.Reset()
	srcs := faultSrcs(t)
	st := NewGenerator(47).Ranking(schedSeqIfc())

	faultinject.Arm(faultinject.PointBind, "", 1, func() {
		panic("injected bind crash")
	})
	out := RunFingerprintGangMode(srcs, "top_module", st, BackendCompiled, nil, GangSoA)
	faultinject.Reset()
	for i := range srcs {
		fpTraceEqual(t, "gang-bind-crash", out[i], runFingerprintSolo(srcs[i], "top_module", st, BackendCompiled))
	}
}

// TestRunFingerprintCtxPreCancelled: a context that is already dead must
// reject the run before any simulation, leaving no claim behind.
func TestRunFingerprintCtxPreCancelled(t *testing.T) {
	src := mustParse(t, schedSeqSrc)
	st := NewGenerator(53).Ranking(schedSeqIfc())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFingerprintCtx(ctx, src, "top_module", st, BackendCompiled); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The claim must have been released: a clean run still works.
	tr, err := RunFingerprintCtx(context.Background(), src, "top_module", st, BackendCompiled)
	if err != nil || tr.Err != nil {
		t.Fatalf("post-cancel run: %v / %v", err, tr.Err)
	}
}
