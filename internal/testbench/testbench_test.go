package testbench

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/verilog/parser"
)

func combIfc() Interface {
	return Interface{
		Inputs:  []PortSpec{{Name: "a", Width: 2}, {Name: "b", Width: 1}},
		Outputs: []PortSpec{{Name: "y", Width: 2}},
	}
}

func seqIfc() Interface {
	return Interface{
		Inputs:  []PortSpec{{Name: "clk", Width: 1}, {Name: "reset", Width: 1}, {Name: "d", Width: 4}},
		Outputs: []PortSpec{{Name: "q", Width: 4}},
		Clock:   "clk",
		Reset:   "reset",
	}
}

func TestInterfaceHelpers(t *testing.T) {
	c := combIfc()
	if c.Sequential() {
		t.Error("comb interface reports sequential")
	}
	s := seqIfc()
	if !s.Sequential() {
		t.Error("seq interface reports combinational")
	}
	data := s.DataInputs()
	if len(data) != 1 || data[0].Name != "d" {
		t.Errorf("DataInputs = %v", data)
	}
}

func TestExhaustiveEnumeration(t *testing.T) {
	g := NewGenerator(1)
	st := g.Ranking(combIfc()) // 3 input bits -> 8 vectors, under MaxCombVectors
	if len(st.Cases) != 8 {
		t.Fatalf("cases = %d, want 8 (exhaustive)", len(st.Cases))
	}
	seen := map[string]bool{}
	for _, c := range st.Cases {
		if len(c.Steps) != 1 {
			t.Fatal("combinational case should have one step")
		}
		key := ""
		for _, name := range []string{"a", "b"} {
			key += c.Steps[0].Inputs[name].String() + "|"
		}
		if seen[key] {
			t.Errorf("duplicate vector %s", key)
		}
		seen[key] = true
	}
}

func TestRandomSamplingCapped(t *testing.T) {
	g := NewGenerator(1)
	wide := Interface{
		Inputs:  []PortSpec{{Name: "a", Width: 32}},
		Outputs: []PortSpec{{Name: "y", Width: 32}},
	}
	st := g.Ranking(wide)
	if len(st.Cases) != g.MaxCombVectors {
		t.Fatalf("cases = %d, want cap %d", len(st.Cases), g.MaxCombVectors)
	}
	// Corners must be present.
	has := func(want string) bool {
		for _, c := range st.Cases {
			if c.Steps[0].Inputs["a"].String() == want {
				return true
			}
		}
		return false
	}
	if !has(sim.NewKnown(32, 0).String()) {
		t.Error("missing all-zeros corner")
	}
	if !has(sim.Not(sim.NewKnown(32, 0)).String()) {
		t.Error("missing all-ones corner")
	}
}

func TestSequentialCasesStartWithReset(t *testing.T) {
	g := NewGenerator(1)
	st := g.Ranking(seqIfc())
	if len(st.Cases) == 0 {
		t.Fatal("no cases")
	}
	for ci, c := range st.Cases {
		if len(c.Steps) < 3 {
			t.Fatalf("case %d too short", ci)
		}
		for s := 0; s < 2; s++ {
			rv, ok := c.Steps[s].Inputs["reset"]
			if !ok {
				t.Fatalf("case %d step %d missing reset", ci, s)
			}
			if u, _ := rv.Uint64(); u != 1 {
				t.Errorf("case %d step %d reset=%d, want 1 (active high)", ci, s, u)
			}
		}
		if u, _ := c.Steps[2].Inputs["reset"].Uint64(); u != 0 {
			t.Errorf("case %d reset still asserted after preamble", ci)
		}
	}
}

func TestActiveLowReset(t *testing.T) {
	ifc := seqIfc()
	ifc.ResetActiveLow = true
	g := NewGenerator(1)
	st := g.Ranking(ifc)
	if u, _ := st.Cases[0].Steps[0].Inputs["reset"].Uint64(); u != 0 {
		t.Error("active-low reset should be driven 0 during the preamble")
	}
	if u, _ := st.Cases[0].Steps[2].Inputs["reset"].Uint64(); u != 1 {
		t.Error("active-low reset should be released to 1")
	}
}

func TestImperfectionDropsCases(t *testing.T) {
	g := NewGenerator(1)
	full := len(g.Ranking(combIfc()).Cases)
	g2 := NewGenerator(1)
	g2.Imperfection = 0.5
	dropped := len(g2.Ranking(combIfc()).Cases)
	if dropped >= full {
		t.Errorf("imperfection did not drop cases: %d vs %d", dropped, full)
	}
	if dropped < 1 {
		t.Error("imperfection must keep at least one case")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(42).Ranking(seqIfc())
	b := NewGenerator(42).Ranking(seqIfc())
	if len(a.Cases) != len(b.Cases) {
		t.Fatal("case counts differ")
	}
	for ci := range a.Cases {
		for si := range a.Cases[ci].Steps {
			for name, v := range a.Cases[ci].Steps[si].Inputs {
				if !v.Equal(b.Cases[ci].Steps[si].Inputs[name]) {
					t.Fatalf("case %d step %d input %s differs", ci, si, name)
				}
			}
		}
	}
}

const xorSrc = `
module top_module (
    input [1:0] a,
    input b,
    output [1:0] y
);
    assign y = a ^ {b, b};
endmodule
`

const orSrc = `
module top_module (
    input [1:0] a,
    input b,
    output [1:0] y
);
    assign y = a | {b, b};
endmodule
`

func TestRunTraceAndAgreement(t *testing.T) {
	g := NewGenerator(9)
	st := g.Ranking(combIfc())
	xorAst, err := parser.Parse(xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	orAst, err := parser.Parse(orSrc)
	if err != nil {
		t.Fatal(err)
	}
	trX1 := Run(xorAst, "top_module", st)
	trX2 := Run(xorAst, "top_module", st)
	trOr := Run(orAst, "top_module", st)
	if trX1.Err != nil || trOr.Err != nil {
		t.Fatalf("run errors: %v %v", trX1.Err, trOr.Err)
	}
	if !Agrees(trX1, trX2) {
		t.Error("same design must agree with itself")
	}
	if trX1.Fingerprint() != trX2.Fingerprint() {
		t.Error("fingerprints of identical traces differ")
	}
	if Agrees(trX1, trOr) {
		t.Error("xor and or must disagree")
	}
	// They agree where a^bb == a|bb; at least one case must differ.
	diff := 0
	for i := range st.Cases {
		if !CaseAgrees(trX1, trOr, i) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("no differing case found")
	}
}

func TestRunRecordsErrors(t *testing.T) {
	badAst, err := parser.Parse(`
module top_module (
    input en,
    output y
);
    wire w;
    assign w = en ? ~w : 1'b0;
    assign y = w;
endmodule
`)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(2)
	st := g.Ranking(Interface{
		Inputs:  []PortSpec{{Name: "en", Width: 1}},
		Outputs: []PortSpec{{Name: "y", Width: 1}},
	})
	tr := Run(badAst, "top_module", st)
	if tr.Err == nil {
		t.Fatal("oscillating design should record an error")
	}
	// Error traces agree only with identical error traces.
	tr2 := Run(badAst, "top_module", st)
	if !Agrees(tr, tr2) {
		t.Error("identical failures should agree")
	}
	okAst, _ := parser.Parse(`
module top_module (
    input en,
    output y
);
    assign y = en;
endmodule
`)
	trOK := Run(okAst, "top_module", st)
	if Agrees(tr, trOK) {
		t.Error("error trace must not agree with a clean trace")
	}
}

func TestVerify(t *testing.T) {
	g := NewGenerator(5)
	st := g.Verification(combIfc())
	xorAst, _ := parser.Parse(xorSrc)
	orAst, _ := parser.Parse(orSrc)
	if !Verify(xorAst, xorAst, "top_module", st) {
		t.Error("design must verify against itself")
	}
	if Verify(orAst, xorAst, "top_module", st) {
		t.Error("different design must fail verification")
	}
}

func TestTraceString(t *testing.T) {
	g := NewGenerator(5)
	st := g.Ranking(combIfc())
	xorAst, _ := parser.Parse(xorSrc)
	tr := Run(xorAst, "top_module", st)
	s := tr.String()
	if s == "" || len(s) < 20 {
		t.Errorf("trace render too short: %q", s)
	}
	tr.Err = ErrRun
	if got := tr.String(); got[:10] != "SIMULATION" {
		t.Errorf("error render = %q", got)
	}
}
