package testbench

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/resultstore"
	"repro/internal/serve/faultinject"
	"repro/internal/verilog/ast"
)

// installStore swaps in s for the duration of the test.
func installStore(t *testing.T, s resultstore.Store) {
	t.Helper()
	prev := SetStore(s)
	t.Cleanup(func() { SetStore(prev) })
}

// countingStore counts Get calls through to the wrapped adapter.
type countingStore struct {
	resultstore.Store
	gets atomic.Int64
}

func (c *countingStore) Get(ctx context.Context, k resultstore.Key) ([]byte, bool, error) {
	c.gets.Add(1)
	return c.Store.Get(ctx, k)
}

// sameTraces fails unless a and b are bit-identical fingerprint traces.
func sameTraces(t *testing.T, label string, a, b *FPTrace) {
	t.Helper()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("%s: whole-run fingerprints differ: %#x vs %#x", label, a.Fingerprint(), b.Fingerprint())
	}
	if len(a.CaseFPs) != len(b.CaseFPs) {
		t.Fatalf("%s: case counts differ: %d vs %d", label, len(a.CaseFPs), len(b.CaseFPs))
	}
	for i := range a.CaseFPs {
		if a.CaseFPs[i] != b.CaseFPs[i] {
			t.Fatalf("%s: case %d fingerprints differ", label, i)
		}
	}
	switch {
	case a.Err == nil && b.Err == nil:
	case a.Err == nil || b.Err == nil:
		t.Fatalf("%s: error mismatch: %v vs %v", label, a.Err, b.Err)
	case a.Err.Error() != b.Err.Error():
		t.Fatalf("%s: error messages differ: %q vs %q", label, a.Err.Error(), b.Err.Error())
	}
}

// TestStoreRoundTripEquivalence is the codec + integration correctness
// gate: for clean candidates, functional mutants, and deterministic
// error traces, a result decoded from the disk store is bit-identical to
// the directly simulated one — and the warm pass performs zero
// simulations. Every pass uses a freshly generated stimulus (new pointer,
// identical content), so the in-process memo always misses and only the
// content-addressed store can short-circuit the run.
func TestStoreRoundTripEquivalence(t *testing.T) {
	d, err := resultstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	installStore(t, d)

	srcs := map[string]string{
		"clean":  schedSeqSrc,
		"mutant": gangSeqVariant,
		// The missing-port candidate fails its binding deterministically,
		// so its trace carries a persistable ErrRun.
		"err-run": gangSeqMissingPort,
	}
	for label, code := range srcs {
		t.Run(label, func(t *testing.T) {
			src := mustParse(t, code)
			stim := func() *Stimulus { return NewGenerator(7301).Ranking(schedSeqIfc()) }

			pre := ReadStoreStats()
			direct := RunFingerprint(src, "top_module", stim(), BackendCompiled)
			mid := ReadStoreStats()
			if mid.Puts == pre.Puts {
				t.Fatal("cold pass published nothing to the store")
			}
			if mid.Sims == pre.Sims {
				t.Fatal("cold pass did not simulate")
			}
			warm := RunFingerprint(src, "top_module", stim(), BackendCompiled)
			post := ReadStoreStats()

			sameTraces(t, "warm vs direct", warm, direct)
			if post.Hits == mid.Hits {
				t.Fatal("warm pass missed the store")
			}
			if post.Sims != mid.Sims {
				t.Fatalf("warm pass simulated %d times, want 0", post.Sims-mid.Sims)
			}
			if label == "err-run" {
				if warm.Err == nil || !errors.Is(warm.Err, ErrRun) {
					t.Fatalf("decoded error lost its ErrRun identity: %v", warm.Err)
				}
			}
		})
	}
}

// TestGangStoreWarmSkipsSimulation drives the gang path: with a warm
// store, every claimed lane is served before gangs form, the lockstep walk
// never runs, and the batch's traces are bit-identical to the cold run's.
func TestGangStoreWarmSkipsSimulation(t *testing.T) {
	d, err := resultstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	installStore(t, d)

	codes := []string{schedSeqSrc, gangSeqVariant, gangSeqLoop}
	srcs := make([]*ast.Source, len(codes))
	for i, code := range codes {
		srcs[i] = mustParse(t, code)
	}
	stim := func() *Stimulus { return NewGenerator(7401).Ranking(schedSeqIfc()) }

	cold := RunFingerprintGang(srcs, "top_module", stim(), BackendCompiled, nil)
	mid := ReadStoreStats()
	if mid.Sims == 0 {
		t.Fatal("cold gang pass performed no simulations")
	}
	warm := RunFingerprintGang(srcs, "top_module", stim(), BackendCompiled, nil)
	post := ReadStoreStats()
	if post.Sims != mid.Sims {
		t.Fatalf("warm gang pass simulated %d times, want 0", post.Sims-mid.Sims)
	}
	if post.Hits-mid.Hits != uint64(len(srcs)) {
		t.Fatalf("warm gang pass hit the store %d times, want %d", post.Hits-mid.Hits, len(srcs))
	}
	for i := range srcs {
		sameTraces(t, "gang warm vs cold", warm[i], cold[i])
	}
}

// TestStoreStampedeSingleFlight proves the memo claim spans tiers: a
// stampede of goroutines on one cold-in-process key costs exactly one
// store lookup and zero simulations when the store is warm.
func TestStoreStampedeSingleFlight(t *testing.T) {
	cs := &countingStore{Store: resultstore.NewMemory(0)}
	installStore(t, cs)

	src := mustParse(t, schedSeqSrc)
	stim := func() *Stimulus { return NewGenerator(7501).Ranking(schedSeqIfc()) }

	// Warm the store (fresh stimulus pointer: in-process memo misses).
	want := RunFingerprint(src, "top_module", stim(), BackendCompiled)

	cs.gets.Store(0)
	pre := ReadStoreStats()
	st := stim() // one shared stimulus: all goroutines collide on one key
	const goroutines = 12
	traces := make([]*FPTrace, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			traces[g] = RunFingerprint(src, "top_module", st, BackendCompiled)
		}(g)
	}
	wg.Wait()
	post := ReadStoreStats()

	if got := cs.gets.Load(); got != 1 {
		t.Fatalf("stampede performed %d store lookups, want 1 (single flight)", got)
	}
	if post.Sims != pre.Sims {
		t.Fatalf("stampede simulated %d times under a warm store, want 0", post.Sims-pre.Sims)
	}
	for g, tr := range traces {
		sameTraces(t, "stampede goroutine", tr, want)
		if g > 0 && tr != traces[0] {
			t.Fatal("stampede waiters did not share the published trace")
		}
	}
}

// TestStoreCancelMidPutLeavesStoreClean is the PR 8 abort-safety drill
// extended to the disk adapter: a job cancelled mid-Put publishes nothing
// (no partial entry, no temp debris), the store stays fully readable, and
// a re-run is bit-identical and persists normally.
func TestStoreCancelMidPutLeavesStoreClean(t *testing.T) {
	defer faultinject.Reset()
	d, err := resultstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	installStore(t, d)

	src := mustParse(t, schedSeqSrc)
	stim := func() *Stimulus { return NewGenerator(7601).Ranking(schedSeqIfc()) }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(faultinject.PointStorePut, "", 1, cancel)
	pre := ReadStoreStats()
	first, err := RunFingerprintCtx(ctx, src, "top_module", stim(), BackendCompiled)
	if err != nil {
		// The cancel lands after the simulation published its result; the
		// run itself must still succeed.
		t.Fatalf("run cancelled mid-Put failed outright: %v", err)
	}
	mid := ReadStoreStats()
	faultinject.Reset()

	if mid.PutFails != pre.PutFails+1 {
		t.Fatalf("PutFails = %d, want %d", mid.PutFails, pre.PutFails+1)
	}
	if n, _ := d.Len(); n != 0 {
		t.Fatalf("cancelled Put left %d entries, want 0", n)
	}
	if temps, _ := filepath.Glob(filepath.Join(d.Root(), "*", "tmp-*")); len(temps) != 0 {
		t.Fatalf("cancelled Put leaked temp files: %v", temps)
	}

	// Re-run: recomputes (memo misses on the fresh stimulus), persists,
	// and matches bit-identically.
	second, err := RunFingerprintCtx(context.Background(), src, "top_module", stim(), BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, "re-run vs cancelled run", second, first)
	if n, _ := d.Len(); n != 1 {
		t.Fatalf("re-run persisted %d entries, want 1", n)
	}

	// And a third pass is served from the store without simulating.
	preWarm := ReadStoreStats()
	third, err := RunFingerprintCtx(context.Background(), src, "top_module", stim(), BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	postWarm := ReadStoreStats()
	sameTraces(t, "warm vs re-run", third, second)
	if postWarm.Sims != preWarm.Sims {
		t.Fatal("warm pass after recovery still simulated")
	}
}

// TestStorePanicIsConfined: a store adapter that panics on Put (crash at
// the injection point) or on Get must never take the run down — the
// wrapper recovers, counts, and the result is computed normally.
func TestStorePanicIsConfined(t *testing.T) {
	defer faultinject.Reset()
	d, err := resultstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	installStore(t, d)

	src := mustParse(t, schedSeqSrc)
	stim := func() *Stimulus { return NewGenerator(7701).Ranking(schedSeqIfc()) }

	faultinject.Arm(faultinject.PointStorePut, "", 1, func() {
		panic("injected: store medium failure mid-publish")
	})
	pre := ReadStoreStats()
	tr, err := RunFingerprintCtx(context.Background(), src, "top_module", stim(), BackendCompiled)
	if err != nil || tr == nil || tr.Err != nil {
		t.Fatalf("run under store-put panic = (%v, %v), want clean result", tr, err)
	}
	post := ReadStoreStats()
	if post.PutFails != pre.PutFails+1 {
		t.Fatalf("PutFails = %d, want %d", post.PutFails, pre.PutFails+1)
	}
	faultinject.Reset()

	// The failed publish left no entry; the next run re-persists cleanly.
	if n, _ := d.Len(); n != 0 {
		t.Fatalf("panicked Put left %d entries", n)
	}
	rerun, err := RunFingerprintCtx(context.Background(), src, "top_module", stim(), BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, "re-run after put panic", rerun, tr)
	if n, _ := d.Len(); n != 1 {
		t.Fatal("store did not recover after put panic")
	}
}

// TestFPMemoEvictionSmallCap pins the configurable memory tier (satellite
// of the persistent store): at cap 2, a third distinct key evicts the
// oldest finished entry, whose re-run then simulates again — and still
// produces bit-identical results.
func TestFPMemoEvictionSmallCap(t *testing.T) {
	prev := SetFPMemoCap(2)
	defer SetFPMemoCap(prev)

	codes := []string{schedSeqSrc, gangSeqVariant, gangSeqLoop}
	st := NewGenerator(7801).Ranking(schedSeqIfc())
	first := make([]*FPTrace, len(codes))
	srcs := make([]*ast.Source, len(codes))
	for i, code := range codes {
		srcs[i] = mustParse(t, code)
		first[i] = RunFingerprint(srcs[i], "top_module", st, BackendCompiled)
	}
	if n := FPMemoLen(); n > 2 {
		t.Fatalf("FPMemoLen = %d after 3 runs at cap 2", n)
	}

	// srcs[0] was evicted: re-running it must simulate again (memo miss)
	// and reproduce the identical trace.
	pre := ReadStoreStats()
	again := RunFingerprint(srcs[0], "top_module", st, BackendCompiled)
	post := ReadStoreStats()
	if post.Sims == pre.Sims {
		t.Fatal("evicted entry was still served from the memo")
	}
	sameTraces(t, "post-eviction re-run", again, first[0])

	// A key still resident is served without simulation.
	pre = ReadStoreStats()
	cached := RunFingerprint(srcs[2], "top_module", st, BackendCompiled)
	post = ReadStoreStats()
	if post.Sims != pre.Sims {
		t.Fatal("resident entry missed the memo")
	}
	sameTraces(t, "resident entry", cached, first[2])
}
