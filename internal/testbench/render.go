package testbench

import (
	"fmt"
	"strings"
)

// RenderVerilog materializes a stimulus as real Verilog testbench source —
// the textual form the paper's CorrectBench-generated testbenches take. The
// rendered bench instantiates the DUT, drives every case, and $displays all
// outputs after each step without judging them (printing testbench).
//
// The output targets standard simulators (e.g. Icarus Verilog) for export
// and inspection; the in-process simulator drives stimuli directly through
// the API instead.
func RenderVerilog(st *Stimulus, dutModule string) string {
	var b strings.Builder
	ifc := st.Ifc

	b.WriteString("`timescale 1ns/1ps\n")
	b.WriteString("module tb;\n")
	for _, in := range ifc.Inputs {
		if in.Width > 1 {
			fmt.Fprintf(&b, "    reg [%d:0] %s;\n", in.Width-1, in.Name)
		} else {
			fmt.Fprintf(&b, "    reg %s;\n", in.Name)
		}
	}
	for _, out := range ifc.Outputs {
		if out.Width > 1 {
			fmt.Fprintf(&b, "    wire [%d:0] %s;\n", out.Width-1, out.Name)
		} else {
			fmt.Fprintf(&b, "    wire %s;\n", out.Name)
		}
	}
	b.WriteString("\n")

	// DUT instantiation by name.
	fmt.Fprintf(&b, "    %s dut (", dutModule)
	first := true
	for _, p := range ifc.Inputs {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, ".%s(%s)", p.Name, p.Name)
		first = false
	}
	for _, p := range ifc.Outputs {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, ".%s(%s)", p.Name, p.Name)
		first = false
	}
	b.WriteString(");\n\n")

	if ifc.Sequential() {
		fmt.Fprintf(&b, "    always #5 %s = ~%s;\n\n", ifc.Clock, ifc.Clock)
	}

	// Display format: one line per step listing every output in binary.
	var fmtParts []string
	var fmtArgs []string
	for _, out := range ifc.Outputs {
		fmtParts = append(fmtParts, out.Name+"=%b")
		fmtArgs = append(fmtArgs, out.Name)
	}
	displayLine := fmt.Sprintf("$display(\"case %%0d step %%0d: %s\", case_i, step_i, %s);",
		strings.Join(fmtParts, " "), strings.Join(fmtArgs, ", "))

	b.WriteString("    integer case_i, step_i;\n")
	b.WriteString("    initial begin\n")
	if ifc.Sequential() {
		fmt.Fprintf(&b, "        %s = 0;\n", ifc.Clock)
	}
	for ci, c := range st.Cases {
		fmt.Fprintf(&b, "        case_i = %d;\n", ci)
		for si, step := range c.Steps {
			fmt.Fprintf(&b, "        step_i = %d;\n", si)
			for _, in := range ifc.Inputs {
				if in.Name == ifc.Clock {
					continue
				}
				v, ok := step.Inputs[in.Name]
				if !ok {
					continue
				}
				fmt.Fprintf(&b, "        %s = %s;\n", in.Name, v.String())
			}
			if ifc.Sequential() {
				b.WriteString("        @(posedge " + ifc.Clock + "); #1;\n")
			} else {
				b.WriteString("        #10;\n")
			}
			b.WriteString("        " + displayLine + "\n")
		}
	}
	b.WriteString("        $finish;\n")
	b.WriteString("    end\n")
	b.WriteString("endmodule\n")
	return b.String()
}
