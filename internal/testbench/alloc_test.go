package testbench

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/verilog/parser"
)

// TestRunBackendAllocBudget caps the allocation cost of one full testbench
// run on the compiled backend (warm compile cache, pooled engines). With the
// zero-allocation engine, what remains is the unavoidable trace-capture
// boundary: one string per recorded output plus per-case bookkeeping. The
// budget asserts we stay within a small constant factor of that floor, so
// engine-side allocations cannot silently creep back in.
func TestRunBackendAllocBudget(t *testing.T) {
	const src = `
module top_module (
    input clk,
    input reset,
    input [15:0] d,
    output reg [15:0] q,
    output [15:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 16'd0;
        else q <= q + d;
    end
    assign inv = ~q;
endmodule
`
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifc := Interface{
		Inputs: []PortSpec{
			{Name: "clk", Width: 1}, {Name: "reset", Width: 1}, {Name: "d", Width: 16},
		},
		Outputs: []PortSpec{{Name: "q", Width: 16}, {Name: "inv", Width: 16}},
		Clock:   "clk",
		Reset:   "reset",
	}
	st := NewGenerator(9).Verification(ifc)

	run := func() {
		tr := RunBackend(parsed, "top_module", st, BackendCompiled)
		if tr.Err != nil {
			t.Fatal(tr.Err)
		}
	}
	run() // warm the compile cache and engine pool

	recorded := 0
	for _, c := range st.Cases {
		recorded += len(c.Steps) * len(ifc.Outputs)
	}
	// Floor: 1 string per recorded output. Bookkeeping (per-case slices,
	// trace assembly, fingerprint scratch) rides within the 2x factor.
	budget := float64(2*recorded + 16*len(st.Cases) + 64)
	allocs := testing.AllocsPerRun(10, run)
	t.Logf("full run: %.0f allocs for %d recorded outputs over %d cases (budget %.0f)",
		allocs, recorded, len(st.Cases), budget)
	if allocs > budget {
		t.Fatalf("one testbench run allocates %.0f objects, budget %.0f", allocs, budget)
	}
}

// TestRunFingerprintAllocBudget is the fingerprint-path counterpart: a full
// run on the compiled backend (warm compile cache, pooled engines) must
// allocate a small constant — the FPTrace shell and backend closures — and
// exactly ZERO per step or per recorded output. This is the
// zero-alloc-per-step regression gate for the streaming ranking path.
func TestRunFingerprintAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	const src = `
module top_module (
    input clk,
    input reset,
    input [15:0] d,
    output reg [15:0] q,
    output [15:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 16'd0;
        else q <= q + d;
    end
    assign inv = ~q;
endmodule
`
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifc := Interface{
		Inputs: []PortSpec{
			{Name: "clk", Width: 1}, {Name: "reset", Width: 1}, {Name: "d", Width: 16},
		},
		Outputs: []PortSpec{{Name: "q", Width: 16}, {Name: "inv", Width: 16}},
		Clock:   "clk",
		Reset:   "reset",
	}
	st := NewGenerator(9).Verification(ifc)

	var last *FPTrace
	run := func() {
		last = RunFingerprint(parsed, "top_module", st, BackendCompiled)
		if last.Err != nil {
			t.Fatal(last.Err)
		}
	}
	run() // warm the compile cache and engine pool
	want := RunBackend(parsed, "top_module", st, BackendCompiled)
	if last.Fingerprint() != want.Fingerprint() {
		t.Fatal("fingerprint run disagrees with trace run")
	}

	// Steps and recorded outputs number in the hundreds here; the budget is
	// a flat constant so any per-step allocation fails loudly.
	const budget = 8.0
	allocs := testing.AllocsPerRun(10, run)
	steps := 0
	for _, c := range st.Cases {
		steps += len(c.Steps)
	}
	t.Logf("fingerprint run: %.0f allocs over %d cases / %d steps (budget %.0f)",
		allocs, len(st.Cases), steps, budget)
	if allocs > budget {
		t.Fatalf("one fingerprint run allocates %.0f objects, budget %.0f", allocs, budget)
	}
}

// TestScheduleDriveAllocBudget gates the compiled-schedule drive path at its
// floor: with the Schedule built and the binding resolved (warm state — what
// every case after the first reuses), driving and fingerprinting a whole
// test case must allocate exactly ZERO objects. Every map lookup, driveOrder
// slice, boxed Value, or formatting call that creeps back into the drive
// loop fails this gate.
func TestScheduleDriveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs allocation accounting")
	}
	const src = `
module top_module (
    input clk,
    input reset,
    input [15:0] d,
    output reg [15:0] q,
    output [15:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 16'd0;
        else q <= q + d;
    end
    assign inv = ~q;
endmodule
`
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifc := Interface{
		Inputs: []PortSpec{
			{Name: "clk", Width: 1}, {Name: "reset", Width: 1}, {Name: "d", Width: 16},
		},
		Outputs: []PortSpec{{Name: "q", Width: 16}, {Name: "inv", Width: 16}},
		Clock:   "clk",
		Reset:   "reset",
	}
	st := NewGenerator(9).Verification(ifc)
	sc := st.schedule()
	if sc == nil {
		t.Fatal("generated stimulus must compile to a schedule")
	}
	d, err := sim.CompileCached(parsed, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	en := d.AcquireEngine()
	defer d.ReleaseEngine(en)
	b, ok := sc.bind(en, &st.Ifc)
	if !ok {
		t.Fatal("binding failed")
	}

	var last uint64
	drive := func() {
		fp, ferr := runCaseFPSched(en, st, sc, &b, 0)
		if ferr != nil {
			t.Fatal(ferr)
		}
		last = fp
	}
	drive() // warm queue buffers
	allocs := testing.AllocsPerRun(20, drive)
	t.Logf("warm scheduled case: %.0f allocs (%d steps), fp=%#x", allocs, len(st.Cases[0].Steps), last)
	if allocs != 0 {
		t.Fatalf("warm scheduled fingerprint case allocates %.0f objects, want 0", allocs)
	}
}

// TestGangDriveAllocBudget gates the gang drive loop at its floor: with
// lanes added and bindings resolved, one whole warm test case — BeginCase,
// per-step decode-once broadcast drives, lockstep advances, per-lane
// fingerprint folds, EndCase — must allocate exactly ZERO objects across
// every lane. Per-case engines come from the design's warm pool, stimulus
// values are plane views, and hashes fold in place.
func TestGangDriveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	ifc := schedSeqIfc()
	st := NewGenerator(9).Verification(ifc)
	sc := st.schedule()
	if sc == nil {
		t.Fatal("generated stimulus must compile to a schedule")
	}
	g := sim.NewGang(2)
	for _, code := range []string{schedSeqSrc, gangSeqVariant} {
		d, err := sim.CompileCached(mustParse(t, code), "top_module")
		if err != nil {
			t.Fatal(err)
		}
		en := d.AcquireEngine()
		b, ok := cachedBind(d, sc, en, &ifc)
		if !ok {
			t.Fatal("binding failed")
		}
		d.ReleaseEngine(en) // sequential lifecycle: fresh pooled engine per case
		g.AddLane(d, nil, b.clock, b.ins, b.outs)
	}
	defer g.Close()

	var last uint64
	drive := func() {
		g.BeginCase()
		nSteps := int(sc.stepOff[1] - sc.stepOff[0])
		off := int(sc.stepOff[0]) * sc.rowWords
		for si := 0; si < nSteps; si++ {
			for pos := range sc.names {
				nw := int(sc.wordsOf[pos])
				g.Drive(pos, sim.ValueView(int(sc.widths[pos]), sc.val[off:off+nw], sc.xz[off:off+nw]))
				off += nw
			}
			g.Advance()
			for oi := range st.Ifc.Outputs {
				g.HashOutput(oi, st.Ifc.Outputs[oi].Width)
			}
		}
		g.EndCase()
		last = g.Hash(0)
	}
	drive() // warm the engine pools and queue buffers
	if g.LiveLanes() != 2 {
		t.Fatalf("lanes retired during warm case: %d live", g.LiveLanes())
	}
	allocs := testing.AllocsPerRun(20, drive)
	t.Logf("warm gang case (2 lanes): %.0f allocs, fp=%#x", allocs, last)
	if allocs != 0 {
		t.Fatalf("warm gang case allocates %.0f objects, want 0", allocs)
	}
}

// TestSoAGangDriveAllocBudget is the SoA counterpart of the per-lane gate
// above: after the first case seals the shared planes and lowers the gang
// program, one whole warm test case — BeginCase lane resets, decode-once
// broadcast drives, merged lockstep advances with gang-program activations,
// per-lane fingerprint folds, EndCase — must allocate exactly ZERO objects
// across every lane.
func TestSoAGangDriveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	ifc := schedSeqIfc()
	st := NewGenerator(9).Verification(ifc)
	sc := st.schedule()
	if sc == nil {
		t.Fatal("generated stimulus must compile to a schedule")
	}
	var base *sim.Design
	g := sim.NewSoAGang(2, nil)
	for _, code := range []string{schedSeqSrc, gangSeqVariant} {
		d, err := sim.CompileDeltaCached(base, mustParse(t, code), "top_module")
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = d
		}
		en := d.AcquireEngine()
		b, ok := cachedBind(d, sc, en, &ifc)
		if !ok {
			t.Fatal("binding failed")
		}
		d.ReleaseEngine(en) // sequential lifecycle: lanes reset per case
		g.AddLane(d, nil, b.clock, b.ins, b.outs)
	}
	defer g.Close()

	var last uint64
	drive := func() {
		g.BeginCase()
		nSteps := int(sc.stepOff[1] - sc.stepOff[0])
		off := int(sc.stepOff[0]) * sc.rowWords
		for si := 0; si < nSteps; si++ {
			for pos := range sc.names {
				nw := int(sc.wordsOf[pos])
				g.Drive(pos, sim.ValueView(int(sc.widths[pos]), sc.val[off:off+nw], sc.xz[off:off+nw]))
				off += nw
			}
			g.Advance()
			for oi := range st.Ifc.Outputs {
				g.HashOutput(oi, st.Ifc.Outputs[oi].Width)
			}
		}
		g.EndCase()
		last = g.Hash(0)
	}
	drive() // seal the gang, warm the queue buffers
	if g.LiveLanes() != 2 {
		t.Fatalf("lanes retired during warm case: %d live", g.LiveLanes())
	}
	allocs := testing.AllocsPerRun(20, drive)
	t.Logf("warm SoA gang case (2 lanes): %.0f allocs, fp=%#x", allocs, last)
	if allocs != 0 {
		t.Fatalf("warm SoA gang case allocates %.0f objects, want 0", allocs)
	}
}
