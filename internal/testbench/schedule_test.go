package testbench

import (
	"context"
	"testing"

	"repro/internal/sim"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/parser"
)

// runBackendLegacy executes a stimulus with the schedule disabled: the
// name-keyed map-walking path the scheduled path must reproduce exactly.
func runBackendLegacy(t *testing.T, src string, st *Stimulus, backend Backend) *Trace {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Ifc: st.Ifc, Cases: make([]CaseTrace, 0, len(st.Cases))}
	cr := caseRunner{} // sched nil: every case takes the legacy path
	tr.Err = forEachCase(context.Background(), parsed, "top_module", st, backend, &cr, func(s sim.Instance, ci int) error {
		ct, cerr := runCase(s, st, &st.Cases[ci])
		if cerr != nil {
			return cerr
		}
		tr.Cases = append(tr.Cases, ct)
		return nil
	})
	return tr
}

const schedSeqSrc = `
module top_module (
    input clk,
    input reset,
    input [4:0] d,
    output reg [4:0] q,
    output [4:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 5'd0;
        else q <= q + d;
    end
    assign inv = ~q;
endmodule
`

func schedSeqIfc() Interface {
	return Interface{
		Inputs:  []PortSpec{{Name: "clk", Width: 1}, {Name: "reset", Width: 1}, {Name: "d", Width: 5}},
		Outputs: []PortSpec{{Name: "q", Width: 5}, {Name: "inv", Width: 5}},
		Clock:   "clk",
		Reset:   "reset",
	}
}

// TestScheduledRunMatchesLegacy drives the same stimulus through the
// compiled schedule and through the legacy name-keyed path, on both
// backends, and requires byte-identical traces and fingerprints.
func TestScheduledRunMatchesLegacy(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		ifc  Interface
	}{
		{"sequential", schedSeqSrc, schedSeqIfc()},
		{"combinational", xorSrc, combIfc()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := NewGenerator(11).Verification(tc.ifc)
			if st.schedule() == nil {
				t.Fatal("generated stimulus must be schedulable")
			}
			parsed, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			for _, backend := range []Backend{BackendCompiled, BackendInterpreter} {
				sched := RunBackend(parsed, "top_module", st, backend)
				legacy := runBackendLegacy(t, tc.src, st, backend)
				if sched.Err != nil || legacy.Err != nil {
					t.Fatalf("%v: errs %v / %v", backend, sched.Err, legacy.Err)
				}
				if len(sched.Cases) != len(legacy.Cases) {
					t.Fatalf("%v: case counts differ", backend)
				}
				for ci := range sched.Cases {
					for si := range sched.Cases[ci].Steps {
						a := sched.Cases[ci].Steps[si].Outputs
						b := legacy.Cases[ci].Steps[si].Outputs
						for oi := range a {
							if a[oi] != b[oi] {
								t.Fatalf("%v case %d step %d out %d: %q vs %q",
									backend, ci, si, oi, a[oi], b[oi])
							}
						}
					}
				}
				fp := RunFingerprint(parsed, "top_module", st, backend)
				if fp.Err != nil || fp.Fingerprint() != sched.Fingerprint() {
					t.Fatalf("%v: scheduled fingerprint run disagrees with trace run", backend)
				}
			}
		})
	}
}

// TestScheduleFallbackOnMissingPort: a candidate missing an expected input
// must fail binding and fall back to the legacy path, producing exactly the
// legacy error trace (error candidates cluster by message, so the bytes
// matter).
func TestScheduleFallbackOnMissingPort(t *testing.T) {
	const missingD = `
module top_module (
    input clk,
    input reset,
    output reg [4:0] q,
    output [4:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 5'd0;
        else q <= q + 5'd1;
    end
    assign inv = ~q;
endmodule
`
	st := NewGenerator(11).Ranking(schedSeqIfc())
	for _, backend := range []Backend{BackendCompiled, BackendInterpreter} {
		got := RunBackend(mustParse(t, missingD), "top_module", st, backend)
		want := runBackendLegacy(t, missingD, st, backend)
		if got.Err == nil {
			t.Fatalf("%v: missing port should error", backend)
		}
		if want.Err == nil || got.Err.Error() != want.Err.Error() {
			t.Fatalf("%v: fallback error %q, legacy error %q", backend, got.Err, want.Err)
		}
		fp := RunFingerprint(mustParse(t, missingD), "top_module", st, backend)
		if fp.Err == nil || fp.Fingerprint() != got.Fingerprint() {
			t.Fatalf("%v: fingerprint fallback diverges", backend)
		}
	}
}

func mustParse(t *testing.T, src string) *ast.Source {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

// TestIrregularStimulusFallsBack: hand-built steps with differing input sets
// must not be scheduled — and must still run.
func TestIrregularStimulusFallsBack(t *testing.T) {
	st := &Stimulus{
		Ifc: combIfc(),
		Cases: []Case{
			{Steps: []Step{{Inputs: map[string]sim.Value{"a": sim.NewKnown(2, 1), "b": sim.NewKnown(1, 0)}}}},
			{Steps: []Step{{Inputs: map[string]sim.Value{"a": sim.NewKnown(2, 3)}}}}, // b missing
		},
	}
	if st.schedule() != nil {
		t.Fatal("irregular stimulus must not compile to a schedule")
	}
	tr := Run(mustParse(t, xorSrc), "top_module", st)
	if tr.Err != nil {
		t.Fatalf("irregular run failed: %v", tr.Err)
	}
	if len(tr.Cases) != 2 {
		t.Fatalf("cases = %d", len(tr.Cases))
	}
}

// TestScheduleRoundTrip: the flattened planes must reproduce every generated
// stimulus value exactly (ValueView(CopyPlanes(v)) == v).
func TestScheduleRoundTrip(t *testing.T) {
	st := NewGenerator(21).Verification(schedSeqIfc())
	sc := st.schedule()
	if sc == nil {
		t.Fatal("no schedule")
	}
	row := 0
	for ci := range st.Cases {
		for si := range st.Cases[ci].Steps {
			off := row * sc.rowWords
			for i, name := range sc.names {
				nw := int(sc.wordsOf[i])
				got := sim.ValueView(int(sc.widths[i]), sc.val[off:off+nw], sc.xz[off:off+nw])
				want := st.Cases[ci].Steps[si].Inputs[name]
				if !got.Equal(want) {
					t.Fatalf("case %d step %d %s: %s vs %s", ci, si, name, got, want)
				}
				off += nw
			}
			row++
		}
	}
}
