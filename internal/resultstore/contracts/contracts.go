// Package contracts holds the behavioral contract every resultstore
// adapter must satisfy, in the frameless contracts style: a test helper
// that each adapter's test file invokes with a factory. One suite, three
// adapters (memory, disk, remote reference), plus a corruption sub-suite
// for adapters whose backing medium can rot underneath them.
package contracts

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/resultstore"
)

func key(i int) resultstore.Key {
	return resultstore.Key{
		DesignHash:   fmt.Sprintf("%064x", 0xd0000+i),
		ScheduleHash: fmt.Sprintf("%064x", 0x50000+i),
	}
}

// Store runs the adapter contract against factory-built stores. Each
// subtest gets a fresh store; the factory is responsible for cleanup
// (t.TempDir, httptest.Server.Close via t.Cleanup, ...).
func Store(t *testing.T, factory func(t *testing.T) resultstore.Store) {
	t.Helper()
	ctx := context.Background()

	t.Run("GetMissing", func(t *testing.T) {
		s := factory(t)
		v, hit, err := s.Get(ctx, key(1))
		if err != nil || hit || v != nil {
			t.Fatalf("Get missing = (%v, %v, %v), want (nil, false, nil)", v, hit, err)
		}
	})

	t.Run("PutGet", func(t *testing.T) {
		s := factory(t)
		want := []byte("fingerprint payload \x00\x01\xff binary safe")
		if err := s.Put(ctx, key(1), want); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, hit, err := s.Get(ctx, key(1))
		if err != nil || !hit {
			t.Fatalf("Get = (_, %v, %v), want hit", hit, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get = %q, want %q", got, want)
		}
	})

	t.Run("Overwrite", func(t *testing.T) {
		s := factory(t)
		if err := s.Put(ctx, key(1), []byte("old")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(ctx, key(1), []byte("new")); err != nil {
			t.Fatal(err)
		}
		got, hit, err := s.Get(ctx, key(1))
		if err != nil || !hit || string(got) != "new" {
			t.Fatalf("Get after overwrite = (%q, %v, %v), want new", got, hit, err)
		}
		if n, err := s.Len(); err != nil || n != 1 {
			t.Fatalf("Len after overwrite = (%d, %v), want 1", n, err)
		}
	})

	t.Run("EmptyValue", func(t *testing.T) {
		s := factory(t)
		if err := s.Put(ctx, key(1), nil); err != nil {
			t.Fatal(err)
		}
		got, hit, err := s.Get(ctx, key(1))
		if err != nil || !hit || len(got) != 0 {
			t.Fatalf("Get empty = (%q, %v, %v), want empty hit", got, hit, err)
		}
	})

	t.Run("KeyIsolation", func(t *testing.T) {
		s := factory(t)
		a := key(1)
		// Differs from a only in the schedule half; the adapters must not
		// conflate the two hash components.
		b := resultstore.Key{DesignHash: a.DesignHash, ScheduleHash: key(2).ScheduleHash}
		if err := s.Put(ctx, a, []byte("va")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(ctx, b, []byte("vb")); err != nil {
			t.Fatal(err)
		}
		ga, _, _ := s.Get(ctx, a)
		gb, _, _ := s.Get(ctx, b)
		if string(ga) != "va" || string(gb) != "vb" {
			t.Fatalf("keys conflated: got %q/%q", ga, gb)
		}
		if n, _ := s.Len(); n != 2 {
			t.Fatalf("Len = %d, want 2", n)
		}
	})

	t.Run("Delete", func(t *testing.T) {
		s := factory(t)
		if err := s.Put(ctx, key(1), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(ctx, key(1)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, hit, err := s.Get(ctx, key(1)); err != nil || hit {
			t.Fatalf("Get after delete = (_, %v, %v), want miss", hit, err)
		}
		if n, _ := s.Len(); n != 0 {
			t.Fatalf("Len after delete = %d, want 0", n)
		}
		if err := s.Delete(ctx, key(1)); err != nil {
			t.Fatalf("Delete missing: %v", err)
		}
	})

	t.Run("ValueAliasing", func(t *testing.T) {
		s := factory(t)
		in := []byte("original")
		if err := s.Put(ctx, key(1), in); err != nil {
			t.Fatal(err)
		}
		copy(in, "XXXXXXXX") // mutating the caller's buffer must not reach the store
		got, _, _ := s.Get(ctx, key(1))
		if string(got) != "original" {
			t.Fatalf("store aliased Put buffer: got %q", got)
		}
		copy(got, "YYYYYYYY") // mutating a returned value must not corrupt the entry
		got2, _, _ := s.Get(ctx, key(1))
		if string(got2) != "original" {
			t.Fatalf("store aliased Get buffer: got %q", got2)
		}
	})

	t.Run("InvalidKey", func(t *testing.T) {
		s := factory(t)
		bad := []resultstore.Key{
			{DesignHash: "", ScheduleHash: key(1).ScheduleHash},
			{DesignHash: "../../etc/passwd", ScheduleHash: key(1).ScheduleHash},
			{DesignHash: key(1).DesignHash, ScheduleHash: "UPPER"},
			{DesignHash: "ab", ScheduleHash: key(1).ScheduleHash},
		}
		for _, k := range bad {
			if err := s.Put(ctx, k, []byte("v")); err == nil {
				t.Fatalf("Put(%+v) accepted invalid key", k)
			}
			if _, _, err := s.Get(ctx, k); err == nil {
				t.Fatalf("Get(%+v) accepted invalid key", k)
			}
		}
	})

	// Stampede: every goroutine sees a miss and races to publish the same
	// deterministic value — exactly what concurrent ranking workers do when
	// the in-process single-flight spans processes that cannot share a
	// claim. Any interleaving must end with one complete, correct entry.
	t.Run("Stampede", func(t *testing.T) {
		s := factory(t)
		const goroutines = 16
		k := key(7)
		want := []byte("deterministic trace payload")
		var wg sync.WaitGroup
		errc := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, hit, err := s.Get(ctx, k); err != nil {
					errc <- err
					return
				} else if !hit {
					if err := s.Put(ctx, k, want); err != nil {
						errc <- err
						return
					}
				}
				got, hit, err := s.Get(ctx, k)
				if err != nil {
					errc <- err
					return
				}
				if hit && !bytes.Equal(got, want) {
					errc <- fmt.Errorf("stampede read tore: %q", got)
				}
			}()
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		got, hit, err := s.Get(ctx, k)
		if err != nil || !hit || !bytes.Equal(got, want) {
			t.Fatalf("post-stampede Get = (%q, %v, %v)", got, hit, err)
		}
		if n, err := s.Len(); err != nil || n != 1 {
			t.Fatalf("post-stampede Len = (%d, %v), want 1", n, err)
		}
	})

	// ConcurrentMixed: readers, writers and deleters on a small key set.
	// Primarily a -race drill; the only visible-state assertion is that a
	// hit always returns one of the values ever written for that key.
	t.Run("ConcurrentMixed", func(t *testing.T) {
		s := factory(t)
		const keys = 4
		vals := make([][]byte, keys)
		for i := range vals {
			vals[i] = []byte(fmt.Sprintf("value-%d", i))
		}
		var wg sync.WaitGroup
		errc := make(chan error, 3*keys*8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					ki := (g + i) % keys
					k := key(ki)
					switch i % 3 {
					case 0:
						if err := s.Put(ctx, k, vals[ki]); err != nil {
							errc <- err
							return
						}
					case 1:
						got, hit, err := s.Get(ctx, k)
						if err != nil {
							errc <- err
							return
						}
						if hit && !bytes.Equal(got, vals[ki]) {
							errc <- fmt.Errorf("key %d read torn value %q", ki, got)
							return
						}
					case 2:
						if err := s.Delete(ctx, k); err != nil {
							errc <- err
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
	})
}

// CorruptMode enumerates the ways a stored record can rot on its medium.
type CorruptMode int

const (
	// CorruptTruncate cuts the record short mid-payload.
	CorruptTruncate CorruptMode = iota
	// CorruptFlipByte flips one payload byte.
	CorruptFlipByte
	// CorruptWrongVersion rewrites the record's version header.
	CorruptWrongVersion
	// CorruptEmpty truncates the record to zero bytes.
	CorruptEmpty
)

// String names the mode for subtest labels.
func (m CorruptMode) String() string {
	switch m {
	case CorruptTruncate:
		return "truncated"
	case CorruptFlipByte:
		return "flipped-byte"
	case CorruptWrongVersion:
		return "wrong-version"
	case CorruptEmpty:
		return "empty-file"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// CorruptModes lists every mode the corruption matrix covers.
var CorruptModes = []CorruptMode{CorruptTruncate, CorruptFlipByte, CorruptWrongVersion, CorruptEmpty}

// Corruptible runs the corruption matrix: for each mode, a stored entry is
// damaged through the adapter-supplied corrupt hook, and the contract is
// that the damage is detected (never served as data), the key reads as a
// clean miss, and a subsequent Put restores it. The factory returns a
// fresh store and a hook that corrupts key k's record in place.
func Corruptible(t *testing.T, factory func(t *testing.T) (resultstore.Store, func(t *testing.T, k resultstore.Key, mode CorruptMode))) {
	t.Helper()
	ctx := context.Background()
	for _, mode := range CorruptModes {
		t.Run(mode.String(), func(t *testing.T) {
			s, corrupt := factory(t)
			k := key(3)
			want := []byte("payload that will be damaged on the medium")
			if err := s.Put(ctx, k, want); err != nil {
				t.Fatal(err)
			}
			corrupt(t, k, mode)
			v, hit, err := s.Get(ctx, k)
			if err != nil {
				t.Fatalf("corrupt entry surfaced an error instead of a miss: %v", err)
			}
			if hit {
				t.Fatalf("corrupt entry served as data: %q", v)
			}
			// The key must remain usable: a re-run publishes again and the
			// fresh record reads back intact.
			if err := s.Put(ctx, k, want); err != nil {
				t.Fatalf("Put after corruption: %v", err)
			}
			got, hit, err := s.Get(ctx, k)
			if err != nil || !hit || !bytes.Equal(got, want) {
				t.Fatalf("Get after re-put = (%q, %v, %v), want restored", got, hit, err)
			}
		})
	}
}
