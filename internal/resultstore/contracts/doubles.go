package contracts

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/resultstore"
)

// ErrInjected is the failure every FailingStore operation returns while
// failing is enabled.
var ErrInjected = errors.New("contracts: injected store failure")

// FailingStore wraps a Store with a switchable failure mode — the contract
// double for drills that need a tier to be down (Layered write-through,
// remote degradation) without a network in the loop.
type FailingStore struct {
	resultstore.Store
	failing atomic.Bool

	// Ops counts operations attempted while failing — proof the caller
	// kept trying the tier rather than short-circuiting.
	Ops atomic.Int64
}

// NewFailingStore wraps backing; the double starts healthy.
func NewFailingStore(backing resultstore.Store) *FailingStore {
	return &FailingStore{Store: backing}
}

// SetFailing switches the failure mode.
func (f *FailingStore) SetFailing(v bool) { f.failing.Store(v) }

func (f *FailingStore) fail() bool {
	if !f.failing.Load() {
		return false
	}
	f.Ops.Add(1)
	return true
}

// Get implements Store.
func (f *FailingStore) Get(ctx context.Context, k resultstore.Key) ([]byte, bool, error) {
	if f.fail() {
		return nil, false, ErrInjected
	}
	return f.Store.Get(ctx, k)
}

// Put implements Store.
func (f *FailingStore) Put(ctx context.Context, k resultstore.Key, v []byte) error {
	if f.fail() {
		return ErrInjected
	}
	return f.Store.Put(ctx, k, v)
}

// Delete implements Store.
func (f *FailingStore) Delete(ctx context.Context, k resultstore.Key) error {
	if f.fail() {
		return ErrInjected
	}
	return f.Store.Delete(ctx, k)
}

// Len implements Store.
func (f *FailingStore) Len() (int, error) {
	if f.fail() {
		return 0, ErrInjected
	}
	return f.Store.Len()
}
