package resultstore_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"repro/internal/resultstore"
	"repro/internal/serve/faultinject"
)

func diskWithTemp(t *testing.T) *resultstore.Disk {
	t.Helper()
	d, err := resultstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	return d
}

func countTemps(t *testing.T, root string) int {
	t.Helper()
	n := 0
	matches, err := filepath.Glob(filepath.Join(root, "*", "tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	n += len(matches)
	return n
}

// A Put cancelled between the temp write and the rename publishes nothing:
// no partial entry, no leaked temp file, and the same Put succeeds
// bit-identically afterwards.
func TestDiskPutCancelledMidWrite(t *testing.T) {
	defer faultinject.Reset()
	d := diskWithTemp(t)
	k := resultstore.Key{DesignHash: "feedface1234", ScheduleHash: "0a0b0c0d"}
	want := []byte("trace payload")

	ctx, cancel := context.WithCancel(context.Background())
	faultinject.Arm(faultinject.PointStorePut, k.DesignHash, 1, cancel)
	if err := d.Put(ctx, k, want); err != context.Canceled {
		t.Fatalf("Put under mid-write cancel = %v, want context.Canceled", err)
	}
	if _, hit, err := d.Get(context.Background(), k); err != nil || hit {
		t.Fatalf("cancelled Put published an entry: (%v, %v)", hit, err)
	}
	if n, _ := d.Len(); n != 0 {
		t.Fatalf("Len = %d after cancelled Put, want 0", n)
	}
	if n := countTemps(t, d.Root()); n != 0 {
		t.Fatalf("%d temp files leaked by cancelled Put", n)
	}

	faultinject.Reset()
	if err := d.Put(context.Background(), k, want); err != nil {
		t.Fatalf("re-Put after cancel: %v", err)
	}
	got, hit, err := d.Get(context.Background(), k)
	if err != nil || !hit || !bytes.Equal(got, want) {
		t.Fatalf("re-run not bit-identical: (%q, %v, %v)", got, hit, err)
	}
}

// A writer that crashes at the same instant leaves only a temp file; the
// key reads as a miss immediately, and reopening the store sweeps the
// debris.
func TestDiskPutCrashMidWrite(t *testing.T) {
	defer faultinject.Reset()
	d := diskWithTemp(t)
	k := resultstore.Key{DesignHash: "feedface5678", ScheduleHash: "0a0b0c0d"}

	faultinject.Arm(faultinject.PointStorePut, k.DesignHash, 1, func() {
		panic("injected: writer crash before rename")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		d.Put(context.Background(), k, []byte("doomed"))
	}()
	faultinject.Reset()

	if _, hit, err := d.Get(context.Background(), k); err != nil || hit {
		t.Fatalf("crashed Put published an entry: (%v, %v)", hit, err)
	}
	if n := countTemps(t, d.Root()); n != 1 {
		t.Fatalf("expected exactly the crashed writer's temp file, found %d", n)
	}

	d2, err := resultstore.NewDisk(d.Root())
	if err != nil {
		t.Fatal(err)
	}
	d2.Logf = t.Logf
	if n := countTemps(t, d2.Root()); n != 0 {
		t.Fatalf("reopen left %d temp files", n)
	}
	if err := d2.Put(context.Background(), k, []byte("retry")); err != nil {
		t.Fatalf("Put after crash: %v", err)
	}
	if got, hit, _ := d2.Get(context.Background(), k); !hit || string(got) != "retry" {
		t.Fatalf("store unusable after crash: (%q, %v)", got, hit)
	}
}
