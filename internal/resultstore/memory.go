package resultstore

import (
	"context"
	"sync"
)

// DefaultMemoryCap bounds the in-memory adapter when no capacity is given;
// it matches the in-process fingerprint memo's historical default.
const DefaultMemoryCap = 4096

// Memory is the in-memory adapter: a mutex-guarded map with an intrusive
// LRU list, following the discipline of the testbench memo and the compile
// cache — entries are their own list nodes, so steady-state maintenance
// allocates nothing beyond the stored values. Values are copied on both
// Put and Get, so callers can never alias the store's internal buffers.
type Memory struct {
	mu    sync.Mutex
	cap   int
	m     map[Key]*memEntry
	front *memEntry // most recently used
	back  *memEntry // least recently used
}

type memEntry struct {
	key        Key
	val        []byte
	prev, next *memEntry
}

// NewMemory returns an in-memory store evicting past cap entries
// (cap <= 0 selects DefaultMemoryCap).
func NewMemory(cap int) *Memory {
	if cap <= 0 {
		cap = DefaultMemoryCap
	}
	return &Memory{cap: cap, m: make(map[Key]*memEntry)}
}

func (s *Memory) unlink(e *memEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Memory) pushFront(e *memEntry) {
	e.prev, e.next = nil, s.front
	if s.front != nil {
		s.front.prev = e
	}
	s.front = e
	if s.back == nil {
		s.back = e
	}
}

// Get implements Store.
func (s *Memory) Get(_ context.Context, k Key) ([]byte, bool, error) {
	if err := k.Validate(); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[k]
	if !ok {
		return nil, false, nil
	}
	if s.front != e {
		s.unlink(e)
		s.pushFront(e)
	}
	out := make([]byte, len(e.val))
	copy(out, e.val)
	return out, true, nil
}

// Put implements Store.
func (s *Memory) Put(_ context.Context, k Key, value []byte) error {
	if err := k.Validate(); err != nil {
		return err
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[k]; ok {
		e.val = cp
		if s.front != e {
			s.unlink(e)
			s.pushFront(e)
		}
		return nil
	}
	e := &memEntry{key: k, val: cp}
	s.m[k] = e
	s.pushFront(e)
	for len(s.m) > s.cap {
		oldest := s.back
		s.unlink(oldest)
		delete(s.m, oldest.key)
	}
	return nil
}

// Delete implements Store.
func (s *Memory) Delete(_ context.Context, k Key) error {
	if err := k.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[k]; ok {
		s.unlink(e)
		delete(s.m, k)
	}
	return nil
}

// Len implements Store.
func (s *Memory) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m), nil
}

// Close implements Store.
func (s *Memory) Close() error { return nil }
