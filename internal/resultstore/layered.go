package resultstore

import "context"

// Layered composes stores into a tier hierarchy, nearest first (e.g.
// memory -> disk -> remote). Get probes tiers in order and backfills every
// nearer tier on a hit, so a key served once from a far tier is local from
// then on. Put and Delete apply to all tiers. Because entries are pure
// functions of their key, backfill needs no coherence protocol: any copy
// in any tier is equally valid.
type Layered struct {
	tiers []Store
}

// NewLayered builds a layered store over tiers, nearest first. At least
// one tier is required.
func NewLayered(tiers ...Store) *Layered {
	if len(tiers) == 0 {
		panic("resultstore: NewLayered needs at least one tier")
	}
	return &Layered{tiers: tiers}
}

// Get implements Store. Tier errors are treated as misses for that tier
// (a flaky remote must not fail lookups the disk can serve); the error is
// surfaced only if every tier errors.
func (l *Layered) Get(ctx context.Context, k Key) ([]byte, bool, error) {
	var firstErr error
	errs := 0
	for i, t := range l.tiers {
		v, hit, err := t.Get(ctx, k)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			errs++
			continue
		}
		if hit {
			for j := 0; j < i; j++ {
				// Best-effort backfill; a failed nearer-tier write only
				// costs the next lookup another probe.
				l.tiers[j].Put(ctx, k, v)
			}
			return v, true, nil
		}
	}
	if errs == len(l.tiers) {
		return nil, false, firstErr
	}
	return nil, false, nil
}

// Put implements Store, writing through every tier. A failing tier never
// starves the others — every tier is attempted regardless — and the write
// succeeds as long as at least one tier accepted it (a down remote must
// not make local write-through report failure; the entry is a pure
// function of its key, so any surviving copy is complete). An error
// surfaces only when every tier failed.
func (l *Layered) Put(ctx context.Context, k Key, value []byte) error {
	var firstErr error
	stored := false
	for _, t := range l.tiers {
		if err := t.Put(ctx, k, value); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			stored = true
		}
	}
	if stored {
		return nil
	}
	return firstErr
}

// Delete implements Store, deleting from every tier.
func (l *Layered) Delete(ctx context.Context, k Key) error {
	var firstErr error
	for _, t := range l.tiers {
		if err := t.Delete(ctx, k); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Len implements Store, reporting the deepest tier — the most complete
// one, since nearer tiers are bounded caches of it.
func (l *Layered) Len() (int, error) {
	return l.tiers[len(l.tiers)-1].Len()
}

// Close implements Store, closing every tier.
func (l *Layered) Close() error {
	var firstErr error
	for _, t := range l.tiers {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
