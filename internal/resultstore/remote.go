package resultstore

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Remote is the pluggable networked adapter: a thin HTTP client speaking
// the protocol served by Handler. It is the seam for a shared fingerprint
// store across vfocusd workers and machines — anything that answers these
// four routes can back it:
//
//	GET    /v1/fp/<designHash>/<scheduleHash>  -> 200 body | 404
//	PUT    /v1/fp/<designHash>/<scheduleHash>  <- body, 204
//	DELETE /v1/fp/<designHash>/<scheduleHash>  -> 204
//	GET    /v1/len                             -> 200 decimal count
type Remote struct {
	base string
	c    *http.Client
}

// NewRemote returns a remote store against baseURL. A nil client gets a
// dedicated one with a conservative timeout, so a hung store server can
// never wedge a ranking worker indefinitely.
func NewRemote(baseURL string, c *http.Client) *Remote {
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	return &Remote{base: strings.TrimRight(baseURL, "/"), c: c}
}

func (r *Remote) url(k Key) string {
	return r.base + "/v1/fp/" + k.DesignHash + "/" + k.ScheduleHash
}

// Get implements Store.
func (r *Remote) Get(ctx context.Context, k Key) ([]byte, bool, error) {
	if err := k.Validate(); err != nil {
		return nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url(k), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, err
		}
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("resultstore: remote GET %s: %s", r.url(k), resp.Status)
	}
}

// Put implements Store.
func (r *Remote) Put(ctx context.Context, k Key, value []byte) error {
	if err := k.Validate(); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.url(k), bytes.NewReader(value))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.c.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("resultstore: remote PUT %s: %s", r.url(k), resp.Status)
	}
	return nil
}

// Delete implements Store.
func (r *Remote) Delete(ctx context.Context, k Key) error {
	if err := k.Validate(); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, r.url(k), nil)
	if err != nil {
		return err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK, http.StatusNotFound:
		return nil
	}
	return fmt.Errorf("resultstore: remote DELETE %s: %s", r.url(k), resp.Status)
}

// Len implements Store.
func (r *Remote) Len() (int, error) {
	req, err := http.NewRequest(http.MethodGet, r.base+"/v1/len", nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("resultstore: remote len: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(body)))
}

// Close implements Store.
func (r *Remote) Close() error {
	r.c.CloseIdleConnections()
	return nil
}

// Handler serves the Remote protocol over any backing Store — the
// reference server implementation the contract suite runs against
// (httptest in-process; a real deployment mounts it behind net/http).
func Handler(backing Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/len", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n, err := backing.Len()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, n)
	})
	mux.HandleFunc("/v1/fp/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/v1/fp/")
		dh, sh, ok := strings.Cut(rest, "/")
		k := Key{DesignHash: dh, ScheduleHash: sh}
		if !ok || strings.Contains(sh, "/") || k.Validate() != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		switch req.Method {
		case http.MethodGet:
			v, hit, err := backing.Get(req.Context(), k)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !hit {
				http.NotFound(w, req)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(v)
		case http.MethodPut:
			body, err := io.ReadAll(req.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := backing.Put(req.Context(), k, body); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			if err := backing.Delete(req.Context(), k); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}
