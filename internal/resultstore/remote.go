package resultstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrng"
)

// ErrRemoteUnavailable is the fast-fail returned while the remote tier's
// circuit breaker is open. Layered treats any tier Get error as a miss, so
// a down remote degrades lookups to fast local misses instead of paying a
// timeout per key.
var ErrRemoteUnavailable = errors.New("resultstore: remote unavailable (circuit open)")

// RemoteOptions tunes the remote adapter's resilience. Zero values take
// the documented defaults.
type RemoteOptions struct {
	// AttemptTimeout bounds each HTTP attempt (default 2s). This replaces
	// the old blanket 30s client timeout: a dead remote now costs at most
	// AttemptTimeout per operation, not 30s per key.
	AttemptTimeout time.Duration
	// GetRetries is the number of retries after the first attempt on
	// idempotent GET lookups (default 2; negative disables). Mutating
	// operations are never retried here — the memo layer above already
	// dedups publishes.
	GetRetries int
	// BackoffBase and BackoffCap shape the jittered retry delay
	// (defaults 25ms and 250ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold trips the circuit after that many consecutive
	// transport/5xx failures (default 4; 0 or negative disables).
	BreakerThreshold int
	// BreakerCooldown is the open period before a half-open probe
	// (default 3s).
	BreakerCooldown time.Duration
}

func (o *RemoteOptions) fill() {
	if o.AttemptTimeout == 0 {
		o.AttemptTimeout = 2 * time.Second
	}
	if o.GetRetries == 0 {
		o.GetRetries = 2
	}
	if o.GetRetries < 0 {
		o.GetRetries = 0
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = 250 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 4
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 3 * time.Second
	}
}

// Remote is the pluggable networked adapter: a thin HTTP client speaking
// the protocol served by Handler, hardened for use as a far tier — per-
// attempt timeouts, bounded jittered retries on idempotent GETs, and a
// consecutive-failure circuit breaker so a down remote degrades to fast
// failures. It is the seam for a shared fingerprint store across vfocusd
// workers and machines — anything that answers these four routes can back
// it:
//
//	GET    /v1/fp/<designHash>/<scheduleHash>  -> 200 body | 404
//	PUT    /v1/fp/<designHash>/<scheduleHash>  <- body, 204
//	DELETE /v1/fp/<designHash>/<scheduleHash>  -> 204
//	GET    /v1/len                             -> 200 decimal count
type Remote struct {
	base    string
	c       *http.Client
	opts    RemoteOptions
	breaker remoteBreaker
}

// NewRemote returns a remote store against baseURL with default resilience
// options. A nil client gets a dedicated one (attempt deadlines come from
// per-attempt contexts, not a blanket client timeout).
func NewRemote(baseURL string, c *http.Client) *Remote {
	return NewRemoteOptions(baseURL, c, RemoteOptions{})
}

// NewRemoteOptions is NewRemote with explicit resilience tuning.
func NewRemoteOptions(baseURL string, c *http.Client, opts RemoteOptions) *Remote {
	if c == nil {
		c = &http.Client{}
	}
	opts.fill()
	r := &Remote{base: strings.TrimRight(baseURL, "/"), c: c, opts: opts}
	r.breaker.threshold = opts.BreakerThreshold
	r.breaker.cooldown = opts.BreakerCooldown
	return r
}

func (r *Remote) url(k Key) string {
	return r.base + "/v1/fp/" + k.DesignHash + "/" + k.ScheduleHash
}

// admit gates one attempt through the breaker.
func (r *Remote) admit() error {
	if !r.breaker.allow() {
		remoteFastFails.Add(1)
		return ErrRemoteUnavailable
	}
	return nil
}

// attemptCtx derives the per-attempt deadline under the caller's ctx.
func (r *Remote) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, r.opts.AttemptTimeout)
}

// Get implements Store, retrying transient failures with jittered backoff
// — GETs are idempotent, and the jitter seed derives from the key so
// drills replay identically.
func (r *Remote) Get(ctx context.Context, k Key) ([]byte, bool, error) {
	if err := k.Validate(); err != nil {
		return nil, false, err
	}
	var rng *xrng.Rand
	var lastErr error
	for attempt := 0; attempt <= r.opts.GetRetries; attempt++ {
		if attempt > 0 {
			remoteRetries.Add(1)
			if rng == nil {
				rng = xrng.New(fnvFold(k.DesignHash + "|" + k.ScheduleHash))
			}
			ceil := r.opts.BackoffBase << (attempt - 1)
			if ceil > r.opts.BackoffCap || ceil <= 0 {
				ceil = r.opts.BackoffCap
			}
			t := time.NewTimer(time.Duration(rng.Float64() * float64(ceil)))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, false, ctx.Err()
			case <-t.C:
			}
		}
		if err := r.admit(); err != nil {
			return nil, false, err
		}
		v, hit, err := r.getOnce(ctx, k)
		r.breaker.report(err == nil)
		if err == nil {
			return v, hit, nil
		}
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		lastErr = err
	}
	return nil, false, lastErr
}

func (r *Remote) getOnce(ctx context.Context, k Key) ([]byte, bool, error) {
	actx, cancel := r.attemptCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, r.url(k), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, err
		}
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("resultstore: remote GET %s: %s", r.url(k), resp.Status)
	}
}

// Put implements Store.
func (r *Remote) Put(ctx context.Context, k Key, value []byte) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if err := r.admit(); err != nil {
		return err
	}
	actx, cancel := r.attemptCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPut, r.url(k), bytes.NewReader(value))
	if err != nil {
		r.breaker.abort()
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.c.Do(req)
	if err != nil {
		r.breaker.report(false)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		r.breaker.report(false)
		return fmt.Errorf("resultstore: remote PUT %s: %s", r.url(k), resp.Status)
	}
	r.breaker.report(true)
	return nil
}

// Delete implements Store.
func (r *Remote) Delete(ctx context.Context, k Key) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if err := r.admit(); err != nil {
		return err
	}
	actx, cancel := r.attemptCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodDelete, r.url(k), nil)
	if err != nil {
		r.breaker.abort()
		return err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		r.breaker.report(false)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK, http.StatusNotFound:
		r.breaker.report(true)
		return nil
	}
	r.breaker.report(false)
	return fmt.Errorf("resultstore: remote DELETE %s: %s", r.url(k), resp.Status)
}

// Len implements Store.
func (r *Remote) Len() (int, error) {
	if err := r.admit(); err != nil {
		return 0, err
	}
	actx, cancel := r.attemptCtx(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, r.base+"/v1/len", nil)
	if err != nil {
		r.breaker.abort()
		return 0, err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		r.breaker.report(false)
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.breaker.report(false)
		return 0, fmt.Errorf("resultstore: remote len: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		r.breaker.report(false)
		return 0, err
	}
	r.breaker.report(true)
	return strconv.Atoi(strings.TrimSpace(string(body)))
}

// Close implements Store.
func (r *Remote) Close() error {
	r.c.CloseIdleConnections()
	return nil
}

// --- Remote resilience plumbing ----------------------------------------------

// remoteBreaker is a compact consecutive-failure circuit breaker:
// closed → open after threshold straight failures, half-open after the
// cooldown with a single probe deciding reclose-or-reopen. (The llm HTTP
// adapter has a sibling; this one is local because resultstore sits below
// the llm import chain.)
type remoteBreaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	openedAt  time.Time
	open      bool
	probing   bool
}

func (b *remoteBreaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing {
		return false
	}
	if time.Since(b.openedAt) < b.cooldown {
		return false
	}
	b.probing = true // half-open: admit exactly one probe
	return true
}

func (b *remoteBreaker) report(ok bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		b.open = false
		b.probing = false
		return
	}
	if b.probing {
		// Failed probe: restart the cooldown.
		b.openedAt = time.Now()
		b.probing = false
		remoteTrips.Add(1)
		return
	}
	b.failures++
	if b.failures >= b.threshold && !b.open {
		b.open = true
		b.openedAt = time.Now()
		remoteTrips.Add(1)
	}
}

// abort releases an admission that never produced a wire outcome.
func (b *remoteBreaker) abort() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Process-wide remote-tier counters, surfaced through
// testbench.ReadStoreStats and vfocusd /statsz.
var (
	remoteRetries   atomic.Uint64
	remoteTrips     atomic.Uint64
	remoteFastFails atomic.Uint64
)

// RemoteStats is a snapshot of the remote adapter counters.
type RemoteStats struct {
	Retries      uint64 `json:"remote_retries"`
	BreakerTrips uint64 `json:"remote_breaker_trips"`
	FastFails    uint64 `json:"remote_fast_fails"`
}

// ReadRemoteStats snapshots the counters.
func ReadRemoteStats() RemoteStats {
	return RemoteStats{
		Retries:      remoteRetries.Load(),
		BreakerTrips: remoteTrips.Load(),
		FastFails:    remoteFastFails.Load(),
	}
}

// ResetRemoteStats zeroes the counters (tests).
func ResetRemoteStats() {
	remoteRetries.Store(0)
	remoteTrips.Store(0)
	remoteFastFails.Store(0)
}

// fnvFold hashes a string with FNV-1a (jitter seeding).
func fnvFold(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// Handler serves the Remote protocol over any backing Store — the
// reference server implementation the contract suite runs against
// (httptest in-process; a real deployment mounts it behind net/http).
func Handler(backing Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/len", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n, err := backing.Len()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, n)
	})
	mux.HandleFunc("/v1/fp/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/v1/fp/")
		dh, sh, ok := strings.Cut(rest, "/")
		k := Key{DesignHash: dh, ScheduleHash: sh}
		if !ok || strings.Contains(sh, "/") || k.Validate() != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		switch req.Method {
		case http.MethodGet:
			v, hit, err := backing.Get(req.Context(), k)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !hit {
				http.NotFound(w, req)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(v)
		case http.MethodPut:
			body, err := io.ReadAll(req.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := backing.Put(req.Context(), k, body); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			if err := backing.Delete(req.Context(), k); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}
