package resultstore_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/resultstore"
	"repro/internal/resultstore/contracts"
)

// One behavioral contract, three adapters. The remote adapter runs against
// the reference Handler over an in-memory backing via httptest, which also
// exercises the server side of the protocol.

func TestMemoryContract(t *testing.T) {
	contracts.Store(t, func(t *testing.T) resultstore.Store {
		return resultstore.NewMemory(0)
	})
}

func TestDiskContract(t *testing.T) {
	contracts.Store(t, func(t *testing.T) resultstore.Store {
		d, err := resultstore.NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		d.Logf = t.Logf
		return d
	})
}

func TestRemoteContract(t *testing.T) {
	contracts.Store(t, func(t *testing.T) resultstore.Store {
		srv := httptest.NewServer(resultstore.Handler(resultstore.NewMemory(0)))
		t.Cleanup(srv.Close)
		return resultstore.NewRemote(srv.URL, srv.Client())
	})
}

// The layered composite must itself satisfy the port contract end to end.
func TestLayeredContract(t *testing.T) {
	contracts.Store(t, func(t *testing.T) resultstore.Store {
		d, err := resultstore.NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		d.Logf = t.Logf
		return resultstore.NewLayered(resultstore.NewMemory(0), d)
	})
}

func TestMemoryEvicts(t *testing.T) {
	ctx := context.Background()
	s := resultstore.NewMemory(2)
	keys := make([]resultstore.Key, 3)
	for i := range keys {
		keys[i] = resultstore.Key{
			DesignHash:   "d00d" + string(rune('a'+i)) + "bcdef",
			ScheduleHash: "5eed5eed",
		}
		if err := s.Put(ctx, keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want cap 2", n)
	}
	if _, hit, _ := s.Get(ctx, keys[0]); hit {
		t.Fatal("oldest entry survived past capacity")
	}
	for _, k := range keys[1:] {
		if _, hit, _ := s.Get(ctx, k); !hit {
			t.Fatalf("recent entry %v evicted", k)
		}
	}
}

// A hit in a far tier must backfill the near tiers so the next lookup is
// local.
func TestLayeredBackfill(t *testing.T) {
	ctx := context.Background()
	near := resultstore.NewMemory(0)
	far := resultstore.NewMemory(0)
	k := resultstore.Key{DesignHash: "abcd1234", ScheduleHash: "beef5678"}
	if err := far.Put(ctx, k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	l := resultstore.NewLayered(near, far)
	if _, hit, err := l.Get(ctx, k); err != nil || !hit {
		t.Fatalf("layered Get = (_, %v, %v), want hit", hit, err)
	}
	if got, hit, _ := near.Get(ctx, k); !hit || string(got) != "v" {
		t.Fatalf("near tier not backfilled: (%q, %v)", got, hit)
	}
}
