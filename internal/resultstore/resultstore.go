// Package resultstore persists fingerprint traces across runs, restarts,
// and processes. A trace is a pure function of its content-addressed key —
// the canonical design hash and the stimulus schedule hash — so any store
// entry is valid forever: there is no invalidation, only eviction.
//
// The package is a port with three adapters in the frameless cache/contracts
// style: Memory (intrusive-LRU, the in-process memo discipline), Disk (one
// checksummed file per key under a sharded layout, atomic rename writes,
// crash-safe reads), and Remote (a thin HTTP client against the reference
// Handler, the seam for a shared networked store). Layered composes them
// into a tiered hierarchy. Every adapter is held to one behavioral contract
// suite (contracts subpackage).
//
// Values are opaque bytes; encoding/decoding of FPTrace records belongs to
// the caller (internal/testbench), which also owns single-flight per key —
// the in-process fingerprint memo claim spans every tier, so a stampede on
// one key performs at most one store lookup and one simulation.
package resultstore

import (
	"context"
	"errors"
	"fmt"
)

// Key addresses one fingerprint trace by content. Both halves are lowercase
// hex digests: DesignHash identifies the compiled design (canonical source
// + top module), ScheduleHash the compiled stimulus schedule plus the
// interface it binds. Identical keys imply bit-identical traces.
type Key struct {
	DesignHash   string
	ScheduleHash string
}

// ErrInvalidKey rejects keys that are empty or not plain lowercase hex.
// Adapters validate before touching their backing medium, so a malformed
// key can never escape into a file path or URL.
var ErrInvalidKey = errors.New("resultstore: invalid key")

// Validate checks both hash components: non-empty, lowercase hex only,
// and bounded length (a SHA-256 digest is 64 characters; 128 leaves room
// for longer digests without admitting unbounded path components).
func (k Key) Validate() error {
	for _, h := range [2]string{k.DesignHash, k.ScheduleHash} {
		if len(h) < 4 || len(h) > 128 {
			return fmt.Errorf("%w: hash length %d", ErrInvalidKey, len(h))
		}
		for i := 0; i < len(h); i++ {
			c := h[i]
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				return fmt.Errorf("%w: non-hex byte %q", ErrInvalidKey, c)
			}
		}
	}
	return nil
}

// Store is the persistence port. Implementations must be safe for
// concurrent use and must never return a value that fails their own
// integrity checks: a torn or corrupt entry reads as a miss, not as data.
type Store interface {
	// Get returns the stored value and true, or (nil, false, nil) on a
	// miss. The returned slice is the caller's to keep.
	Get(ctx context.Context, k Key) ([]byte, bool, error)
	// Put stores value under k, replacing any existing entry atomically.
	// A cancelled Put must leave either the old entry or no entry —
	// never a partial record.
	Put(ctx context.Context, k Key, value []byte) error
	// Delete removes k; deleting a missing key is not an error.
	Delete(ctx context.Context, k Key) error
	// Len reports the number of stored entries.
	Len() (int, error)
	// Close releases adapter resources. The store is unusable afterwards.
	Close() error
}
