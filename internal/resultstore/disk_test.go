package resultstore_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resultstore"
	"repro/internal/resultstore/contracts"
)

// TestDiskCorruptionMatrix runs the contract corruption matrix against the
// disk adapter, damaging records directly on the filesystem: truncated
// record, flipped payload byte, wrong-version header, empty file. Every
// mode must be caught by the record checks (magic/version/length/CRC32C)
// and read as a miss — never as data — with the damaged file quarantined
// aside as <name>.bad.
func TestDiskCorruptionMatrix(t *testing.T) {
	var last *resultstore.Disk
	contracts.Corruptible(t, func(t *testing.T) (resultstore.Store, func(t *testing.T, k resultstore.Key, mode contracts.CorruptMode)) {
		d, err := resultstore.NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		d.Logf = t.Logf
		last = d
		corrupt := func(t *testing.T, k resultstore.Key, mode contracts.CorruptMode) {
			path := d.Path(k)
			rec, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case contracts.CorruptTruncate:
				rec = rec[:len(rec)-5]
			case contracts.CorruptFlipByte:
				rec[len(rec)-1] ^= 0x40
			case contracts.CorruptWrongVersion:
				rec[4] = 0x7f
			case contracts.CorruptEmpty:
				rec = nil
			}
			if err := os.WriteFile(path, rec, 0o644); err != nil {
				t.Fatal(err)
			}

			// After the contract's post-corruption Get, the damaged record
			// must be quarantined, not deleted or still shadowing the key.
			t.Cleanup(func() {
				if q := d.Quarantined(); q != 1 {
					t.Errorf("Quarantined() = %d, want 1", q)
				}
				if _, err := os.Stat(path + ".bad"); err != nil {
					t.Errorf("quarantine file missing: %v", err)
				}
			})
		}
		return d, corrupt
	})
	if last == nil {
		t.Fatal("corruption matrix never built a store")
	}
}

// A writer that dies between temp-write and rename leaves a tmp-* file;
// the next open sweeps it and the key still reads as a clean miss.
func TestDiskSweepsAbandonedTemps(t *testing.T) {
	dir := t.TempDir()
	d, err := resultstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	k := resultstore.Key{DesignHash: "deadbeef00", ScheduleHash: "cafe1234"}
	shard := filepath.Dir(d.Path(k))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shard, "tmp-abandoned")
	if err := os.WriteFile(tmp, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := resultstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2.Logf = t.Logf
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("abandoned temp survived reopen: %v", err)
	}
	if _, hit, err := d2.Get(context.Background(), k); err != nil || hit {
		t.Fatalf("Get = (_, %v, %v), want clean miss", hit, err)
	}
	if n, err := d2.Len(); err != nil || n != 0 {
		t.Fatalf("Len = (%d, %v), want 0", n, err)
	}
}

// The sharded layout keys the shard by the design hash prefix, so entries
// never pile into one directory and the path never embeds raw input.
func TestDiskShardedLayout(t *testing.T) {
	d, err := resultstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	k := resultstore.Key{DesignHash: "abcdef012345", ScheduleHash: "9876fedc"}
	if err := d.Put(context.Background(), k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(d.Root(), d.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(rel, string(filepath.Separator))
	if len(parts) != 2 || parts[0] != "ab" || !strings.HasSuffix(parts[1], ".fpr") {
		t.Fatalf("unexpected layout %q", rel)
	}
	if _, err := os.Stat(d.Path(k)); err != nil {
		t.Fatalf("record not at Path(): %v", err)
	}
}
