package resultstore

import (
	"fmt"
	"strings"
)

// DefaultDir is the conventional on-disk store location (relative to the
// working directory) used by the CLI flags when none is given.
const DefaultDir = "vfocus-store"

// Open builds a store from a -store flag spec. The spec is a comma-
// separated list of tiers, nearest first; each tier is one of:
//
//	off            no persistent store (Open returns nil)
//	mem            in-memory adapter (capacity = memCap)
//	disk           on-disk adapter rooted at dir
//	http(s)://URL  remote adapter against a Handler-speaking server
//
// A single tier returns that adapter directly; multiple tiers compose into
// a Layered store (e.g. "disk,https://fp.example.com" reads through the
// local disk into the shared remote and writes through both). An empty
// spec means off. The returned description is human-readable for logs.
func Open(spec, dir string, memCap int) (Store, string, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return nil, "off", nil
	}
	if dir == "" {
		dir = DefaultDir
	}
	var tiers []Store
	var descs []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "mem":
			tiers = append(tiers, NewMemory(memCap))
			descs = append(descs, fmt.Sprintf("mem(cap=%d)", effectiveCap(memCap)))
		case part == "disk":
			d, err := NewDisk(dir)
			if err != nil {
				return nil, "", fmt.Errorf("resultstore: open disk store at %s: %w", dir, err)
			}
			tiers = append(tiers, d)
			descs = append(descs, "disk:"+dir)
		case strings.HasPrefix(part, "http://") || strings.HasPrefix(part, "https://"):
			tiers = append(tiers, NewRemote(part, nil))
			descs = append(descs, "remote:"+part)
		default:
			return nil, "", fmt.Errorf("resultstore: unknown store spec %q (want off, mem, disk, or an http(s) URL)", part)
		}
	}
	desc := strings.Join(descs, " -> ")
	if len(tiers) == 1 {
		return tiers[0], desc, nil
	}
	return NewLayered(tiers...), desc, nil
}

func effectiveCap(c int) int {
	if c <= 0 {
		return DefaultMemoryCap
	}
	return c
}
