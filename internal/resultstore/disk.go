package resultstore

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/serve/faultinject"
)

// Disk record layout (little-endian), one file per key:
//
//	offset 0  magic   "VFPR"
//	offset 4  version u8
//	offset 5  paylen  u32
//	offset 9  crc32c  u32 (Castagnoli, over the payload only)
//	offset 13 payload
//
// Writes go to a temp file in the destination shard directory followed by
// an atomic rename, so a reader only ever sees complete records or nothing.
// There is no fsync: a machine crash can tear a rename target, but the
// checksum turns any torn or bit-rotted record into a verified miss — the
// store can lose results, never invent them.
const (
	diskMagic      = "VFPR"
	diskVersion    = 1
	diskHeaderSize = 13
	diskSuffix     = ".fpr"
	diskTmpPrefix  = "tmp-"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Disk is the on-disk adapter: a sharded content-addressed layout
// (root/<designHash[:2]>/<designHash[2:]>-<scheduleHash>.fpr) with
// checksummed records. Entries that fail verification are quarantined
// (renamed to <name>.bad), logged, and read as misses; the key stays
// writable. Disk is safe for concurrent use in and across processes:
// same-key writers race at the rename, and either winner's record is a
// complete, valid encoding of the same pure function.
type Disk struct {
	root string
	// Logf reports quarantined entries; defaults to log.Printf. Set before
	// the store is shared across goroutines.
	Logf func(format string, args ...any)

	quarantined atomic.Uint64
}

// NewDisk opens (creating if needed) a disk store rooted at dir and sweeps
// temp files abandoned by crashed writers.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Disk{root: dir, Logf: log.Printf}
	d.sweepTemps()
	return d, nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

// Quarantined reports how many corrupt entries this store has quarantined.
func (d *Disk) Quarantined() uint64 { return d.quarantined.Load() }

// Path returns where k's record lives (whether or not it exists). Exposed
// for ops tooling and the corruption drills; normal access goes through
// Get/Put/Delete.
func (d *Disk) Path(k Key) string {
	return filepath.Join(d.root, k.DesignHash[:2], k.DesignHash[2:]+"-"+k.ScheduleHash+diskSuffix)
}

// sweepTemps removes temp files left by writers that died before their
// rename. Runs once at open; shard directories are one level deep.
func (d *Disk) sweepTemps() {
	shards, err := os.ReadDir(d.root)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		dir := filepath.Join(d.root, sh.Name())
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), diskTmpPrefix) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

func encodeDiskRecord(payload []byte) []byte {
	rec := make([]byte, diskHeaderSize+len(payload))
	copy(rec, diskMagic)
	rec[4] = diskVersion
	binary.LittleEndian.PutUint32(rec[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[9:], crc32.Checksum(payload, castagnoli))
	copy(rec[diskHeaderSize:], payload)
	return rec
}

// decodeDiskRecord verifies a raw record and returns its payload, or an
// error describing which check failed.
func decodeDiskRecord(rec []byte) ([]byte, error) {
	if len(rec) < diskHeaderSize {
		return nil, errors.New("short record")
	}
	if string(rec[:4]) != diskMagic {
		return nil, errors.New("bad magic")
	}
	if rec[4] != diskVersion {
		return nil, errors.New("unknown version")
	}
	paylen := binary.LittleEndian.Uint32(rec[5:])
	if int(paylen) != len(rec)-diskHeaderSize {
		return nil, errors.New("length mismatch")
	}
	payload := rec[diskHeaderSize:]
	if binary.LittleEndian.Uint32(rec[9:]) != crc32.Checksum(payload, castagnoli) {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// Get implements Store. Any record failing verification — truncated,
// bit-flipped, wrong version, empty — is quarantined and reads as a miss.
func (d *Disk) Get(_ context.Context, k Key) ([]byte, bool, error) {
	if err := k.Validate(); err != nil {
		return nil, false, err
	}
	path := d.Path(k)
	rec, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, err
	}
	payload, derr := decodeDiskRecord(rec)
	if derr != nil {
		d.quarantine(path, derr)
		return nil, false, nil
	}
	return payload, true, nil
}

// quarantine moves a corrupt record aside so it stops shadowing the key and
// stays inspectable, and counts + logs the event.
func (d *Disk) quarantine(path string, reason error) {
	d.quarantined.Add(1)
	if err := os.Rename(path, path+".bad"); err != nil {
		// Renaming can race another reader quarantining the same record;
		// losing that race still leaves the key readable-as-miss.
		os.Remove(path)
	}
	if d.Logf != nil {
		d.Logf("resultstore: quarantined corrupt entry %s (%v)", path, reason)
	}
}

// Put implements Store: write a temp record in the destination shard, then
// atomically rename it over the final path. Cancellation observed before
// the rename removes the temp file and publishes nothing.
func (d *Disk) Put(ctx context.Context, k Key, value []byte) error {
	if err := k.Validate(); err != nil {
		return err
	}
	final := d.Path(k)
	shard := filepath.Dir(final)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(shard, diskTmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(encodeDiskRecord(value))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	// The abort-safety drills land a cancel or a crash exactly here: the
	// record is complete on disk but not yet visible under its key.
	faultinject.Fire(faultinject.PointStorePut, k.DesignHash)
	if err := ctx.Err(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Delete implements Store.
func (d *Disk) Delete(_ context.Context, k Key) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if err := os.Remove(d.Path(k)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Len implements Store by counting record files across shards.
func (d *Disk) Len() (int, error) {
	shards, err := os.ReadDir(d.root)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(d.root, sh.Name()))
		if err != nil {
			continue
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), diskSuffix) {
				n++
			}
		}
	}
	return n, nil
}

// Close implements Store.
func (d *Disk) Close() error { return nil }
