package resultstore_test

// Resilience drills for the remote tier: per-attempt timeouts, idempotent
// GET retries, the circuit breaker degrading a Layered store to fast
// misses, and the Layered.Put write-through regression — failing tiers
// injected through the contract doubles, no sleeps longer than the drills
// need.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resultstore"
	"repro/internal/resultstore/contracts"
)

func rkey(i int) resultstore.Key {
	return resultstore.Key{
		DesignHash:   fmt.Sprintf("%064x", 0xabc00+i),
		ScheduleHash: fmt.Sprintf("%064x", 0xdef00+i),
	}
}

// fastRemoteOptions keeps the drills millisecond-scale.
func fastRemoteOptions() resultstore.RemoteOptions {
	return resultstore.RemoteOptions{
		AttemptTimeout:   150 * time.Millisecond,
		GetRetries:       2,
		BackoffBase:      time.Millisecond,
		BackoffCap:       4 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	}
}

// TestRemotePerAttemptTimeout: a hung server costs one AttemptTimeout per
// attempt, not the old blanket 30s.
func TestRemotePerAttemptTimeout(t *testing.T) {
	resultstore.ResetRemoteStats()
	hold := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hold
	}))
	defer ts.Close()
	// LIFO: the handler must be released before ts.Close waits on it.
	defer close(hold)
	opts := fastRemoteOptions()
	opts.GetRetries = -1 // isolate the timeout from the retry loop
	r := resultstore.NewRemoteOptions(ts.URL, nil, opts)
	defer r.Close()

	start := time.Now()
	_, _, err := r.Get(context.Background(), rkey(1))
	if err == nil {
		t.Fatal("Get against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Get took %v; per-attempt timeout did not bound the stall", elapsed)
	}
}

// TestRemoteGetRetriesTransient: a blip on an idempotent GET is absorbed
// by the bounded jittered retry, and the counter records it.
func TestRemoteGetRetriesTransient(t *testing.T) {
	resultstore.ResetRemoteStats()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "blip", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("payload"))
	}))
	defer ts.Close()
	r := resultstore.NewRemoteOptions(ts.URL, nil, fastRemoteOptions())
	defer r.Close()

	v, hit, err := r.Get(context.Background(), rkey(1))
	if err != nil || !hit || string(v) != "payload" {
		t.Fatalf("Get = (%q, %v, %v), want retried hit", v, hit, err)
	}
	if st := resultstore.ReadRemoteStats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

// TestRemoteBreakerDegradesLayered: with the remote tier down, enough
// lookups trip the breaker; after that a Layered(mem, remote) store serves
// fast misses and keeps accepting writes — the down remote is invisible
// apart from the counters.
func TestRemoteBreakerDegradesLayered(t *testing.T) {
	resultstore.ResetRemoteStats()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	r := resultstore.NewRemoteOptions(ts.URL, nil, fastRemoteOptions())
	mem := resultstore.NewMemory(64)
	layered := resultstore.NewLayered(mem, r)
	defer layered.Close()
	ctx := context.Background()

	// Trip: threshold 3 with 2 retries per Get means one lookup is enough.
	if _, hit, err := layered.Get(ctx, rkey(1)); err != nil || hit {
		t.Fatalf("Get with down remote = (_, %v, %v), want clean miss", hit, err)
	}
	st := resultstore.ReadRemoteStats()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}

	// Open: lookups are fast misses (no wire), writes still succeed via
	// the memory tier (the Layered.Put regression fix).
	ts.Close() // connection-refused from here on; breaker shields us anyway
	start := time.Now()
	if _, hit, err := layered.Get(ctx, rkey(2)); err != nil || hit {
		t.Fatalf("degraded Get = (_, %v, %v), want clean miss", hit, err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("degraded Get took %v, want fast-fail", elapsed)
	}
	if err := layered.Put(ctx, rkey(2), []byte("v")); err != nil {
		t.Fatalf("Put with down remote tier = %v, want nil (memory tier accepted)", err)
	}
	if v, hit, err := layered.Get(ctx, rkey(2)); err != nil || !hit || string(v) != "v" {
		t.Fatalf("Get after degraded Put = (%q, %v, %v)", v, hit, err)
	}
	if st := resultstore.ReadRemoteStats(); st.FastFails == 0 {
		t.Fatalf("no fast-fails recorded: %+v", st)
	}

	// Direct remote access reports the typed unavailability.
	if _, _, err := r.Get(ctx, rkey(3)); !errors.Is(err, resultstore.ErrRemoteUnavailable) {
		t.Fatalf("open-breaker Get = %v, want ErrRemoteUnavailable", err)
	}
}

// TestRemoteBreakerHalfOpenRecovers: after the cooldown one probe is
// admitted; a healthy upstream closes the circuit.
func TestRemoteBreakerHalfOpenRecovers(t *testing.T) {
	resultstore.ResetRemoteStats()
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()
	opts := fastRemoteOptions()
	opts.BreakerCooldown = 50 * time.Millisecond
	r := resultstore.NewRemoteOptions(ts.URL, nil, opts)
	defer r.Close()
	ctx := context.Background()

	if _, _, err := r.Get(ctx, rkey(1)); err == nil {
		t.Fatal("expected failure while down")
	}
	if _, _, err := r.Get(ctx, rkey(1)); !errors.Is(err, resultstore.ErrRemoteUnavailable) {
		t.Fatalf("Get while open = %v, want ErrRemoteUnavailable", err)
	}
	healthy.Store(true)
	time.Sleep(70 * time.Millisecond)
	if _, hit, err := r.Get(ctx, rkey(1)); err != nil || hit {
		t.Fatalf("post-recovery Get = (_, %v, %v), want clean miss", hit, err)
	}
	// Closed again: subsequent calls flow.
	if _, _, err := r.Get(ctx, rkey(2)); err != nil {
		t.Fatalf("post-recovery Get 2 = %v", err)
	}
}

// TestLayeredPutPartialSuccess is the write-through regression: a failing
// far tier must neither stop nearer tiers from being written (all tiers
// are attempted) nor turn the Put into a reported failure, and only an
// all-tiers failure surfaces an error.
func TestLayeredPutPartialSuccess(t *testing.T) {
	ctx := context.Background()
	near := resultstore.NewMemory(16)
	farBacking := resultstore.NewMemory(16)
	far := contracts.NewFailingStore(farBacking)
	layered := resultstore.NewLayered(near, far)
	defer layered.Close()

	// Far tier down: Put succeeds, near tier has the value, and the far
	// tier was still attempted (no short-circuit).
	far.SetFailing(true)
	if err := layered.Put(ctx, rkey(1), []byte("v1")); err != nil {
		t.Fatalf("Put with failing far tier = %v, want nil", err)
	}
	if far.Ops.Load() == 0 {
		t.Fatal("far tier was never attempted")
	}
	if v, hit, _ := near.Get(ctx, rkey(1)); !hit || string(v) != "v1" {
		t.Fatalf("near tier missing write-through: (%q, %v)", v, hit)
	}

	// Far tier recovers: the next Put reaches both.
	far.SetFailing(false)
	if err := layered.Put(ctx, rkey(2), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, hit, _ := farBacking.Get(ctx, rkey(2)); !hit || string(v) != "v2" {
		t.Fatalf("recovered far tier missing write: (%q, %v)", v, hit)
	}

	// Failing *near* tier: the far tier still takes the write.
	nearFailing := contracts.NewFailingStore(resultstore.NewMemory(16))
	nearFailing.SetFailing(true)
	l2 := resultstore.NewLayered(nearFailing, farBacking)
	if err := l2.Put(ctx, rkey(3), []byte("v3")); err != nil {
		t.Fatalf("Put with failing near tier = %v, want nil", err)
	}
	if v, hit, _ := farBacking.Get(ctx, rkey(3)); !hit || string(v) != "v3" {
		t.Fatalf("far tier missing write past failing near tier: (%q, %v)", v, hit)
	}

	// Every tier failing: the error finally surfaces.
	allDown := resultstore.NewLayered(nearFailing)
	if err := allDown.Put(ctx, rkey(4), []byte("v4")); !errors.Is(err, contracts.ErrInjected) {
		t.Fatalf("Put with every tier failing = %v, want ErrInjected", err)
	}
}
