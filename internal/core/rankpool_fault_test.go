package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/serve/faultinject"
	"repro/internal/sim"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
)

// gatePool parses a pool of two-input gate candidates for cmb_gate_00_and2:
// the golden AND, an OR mutant, an XOR mutant, a duplicate of the OR mutant
// (dedup must coalesce it), and a nil slot standing in for an invalid
// candidate. Returns (task, golden, srcs).
func gatePool(t *testing.T) (eval.Task, *ast.Source, []*ast.Source) {
	t.Helper()
	task := pickTask(t, "cmb_gate_00_and2")
	exprs := []string{"a & b", "a | b", "a ^ b", "a | b"}
	srcs := make([]*ast.Source, 0, len(exprs)+1)
	for _, e := range exprs {
		src, err := eval.ParseCached("module top_module(\n    input a,\n    input b,\n    output y\n);\n    assign y = " + e + ";\nendmodule\n")
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	srcs = append(srcs, nil)
	golden, err := eval.ParseCached(task.Golden)
	if err != nil {
		t.Fatal(err)
	}
	return task, golden, srcs
}

// clusterMembers flattens clusters to their member index sets, dropping the
// fingerprints — the representation-independent part two ranking paths must
// agree on.
func clusterMembers(cls []Cluster) [][]int {
	out := make([][]int, len(cls))
	for i, cl := range cls {
		out[i] = cl.Members
	}
	return out
}

// TestRankPoolPanicConfinedToCandidate injects a sticky simulator crash
// into one candidate of a worker-pool rank (satellite 3): the panicking
// candidate must come back with its own ErrSimPanic, every other candidate
// must be bit-identical to a clean run, and after disarming, re-running the
// pool is bit-identical to a never-faulted run.
func TestRankPoolPanicConfinedToCandidate(t *testing.T) {
	defer faultinject.Reset()
	task, golden, srcs := gatePool(t)
	st := testbench.RankingCached(9101, 0, task.Ifc)
	cfg := RankPoolConfig{Backend: testbench.BackendCompiled, Workers: 3, GangSize: 2, Golden: golden}

	// srcs[2] is the XOR mutant; sticky, so the solo re-run the gang falls
	// back to after the crash panics again.
	faultinject.ArmFrom(faultinject.PointSimCase, sim.CanonicalKey(srcs[2]), 1, func() {
		panic("injected simulator crash")
	})
	faulted, err := RankPool(context.Background(), srcs, st, cfg)
	if err != nil {
		t.Fatalf("faulted RankPool returned pool-level error: %v", err)
	}
	if faulted.FPs[2] == nil || faulted.FPs[2].Err == nil || !errors.Is(faulted.FPs[2].Err, testbench.ErrSimPanic) {
		t.Fatalf("victim FPs[2] = %+v, want ErrSimPanic", faulted.FPs[2])
	}
	if faulted.FPs[4] != nil {
		t.Fatalf("nil source got a trace: %+v", faulted.FPs[4])
	}

	faultinject.Reset()
	clean, err := RankPool(context.Background(), srcs, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3} {
		f, c := faulted.FPs[i], clean.FPs[i]
		if f.Err != nil || c.Err != nil {
			t.Fatalf("survivor %d errored: faulted=%v clean=%v", i, f.Err, c.Err)
		}
		if f.Fingerprint() != c.Fingerprint() || !reflect.DeepEqual(f.CaseFPs, c.CaseFPs) {
			t.Fatalf("survivor %d diverged between faulted and clean runs", i)
		}
	}
	if clean.FPs[2].Err != nil {
		t.Fatalf("victim still failing after disarm: %v", clean.FPs[2].Err)
	}
	// Clean clusters: {1,3} (the duplicated OR) first, then {0} and {2} in
	// fingerprint order; the faulted run must be the same minus the victim.
	cm := clusterMembers(clean.Clusters)
	if len(cm) != 3 || !reflect.DeepEqual(cm[0], []int{1, 3}) ||
		!(reflect.DeepEqual(cm[1], []int{0}) || reflect.DeepEqual(cm[2], []int{0})) ||
		!(reflect.DeepEqual(cm[1], []int{2}) || reflect.DeepEqual(cm[2], []int{2})) {
		t.Fatalf("clean clusters = %v, want [[1 3] [0] [2]] (singletons in either order)", cm)
	}
	if want := [][]int{{1, 3}, {0}}; !reflect.DeepEqual(clusterMembers(faulted.Clusters), want) {
		t.Fatalf("faulted clusters = %v, want %v", clusterMembers(faulted.Clusters), want)
	}
	if clean.UniqueJobs != 3 {
		t.Fatalf("UniqueJobs = %d, want 3 (OR duplicate must dedup)", clean.UniqueJobs)
	}
}

// TestRankPoolCancelLeavesCachesReusable cancels a rank mid-flight (at the
// second gang batch) and then re-runs the identical pool twice: the cancel
// must surface as the context error, and — the ISSUE's acceptance bar — the
// aborted run must leave every process-wide memo reusable, with the re-runs
// bit-identical to each other AND agreeing with the independent legacy
// full-trace referee that shares none of the fingerprint memos.
func TestRankPoolCancelLeavesCachesReusable(t *testing.T) {
	defer faultinject.Reset()
	task, golden, _ := gatePool(t)
	exprs := []string{"a & b", "a | b", "a ^ b", "~(a & b)", "~(a | b)", "~(a ^ b)", "a", "b"}
	srcs := make([]*ast.Source, len(exprs))
	for i, e := range exprs {
		src, err := eval.ParseCached("module top_module(\n    input a,\n    input b,\n    output y\n);\n    assign y = " + e + ";\nendmodule\n")
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = src
	}
	st := testbench.RankingCached(9103, 0, task.Ifc)
	cfg := RankPoolConfig{Backend: testbench.BackendCompiled, Workers: 1, GangSize: 2, Golden: golden}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(faultinject.PointRankBatch, "", 2, cancel)
	if _, err := RankPool(ctx, srcs, st, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RankPool err = %v, want context.Canceled", err)
	}

	faultinject.Reset()
	first, err := RankPool(context.Background(), srcs, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RankPool(context.Background(), srcs, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Clusters, second.Clusters) {
		t.Fatalf("post-cancel re-runs diverged:\n%v\nvs\n%v", first.Clusters, second.Clusters)
	}
	for i := range srcs {
		if first.FPs[i].Err != nil || first.FPs[i].Fingerprint() != second.FPs[i].Fingerprint() {
			t.Fatalf("candidate %d not bit-identical across post-cancel re-runs", i)
		}
	}

	// Independent referee: the legacy full-trace path re-simulates from
	// scratch (no fingerprint memo), so agreement here rules out a stale or
	// poisoned memo entry surviving the cancel.
	legacy, err := RankPool(context.Background(), srcs, st, RankPoolConfig{
		Backend: testbench.BackendCompiled, LegacyTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clusterMembers(first.Clusters), clusterMembers(legacy.Clusters)) {
		t.Fatalf("fingerprint clusters %v disagree with legacy referee %v",
			clusterMembers(first.Clusters), clusterMembers(legacy.Clusters))
	}
}

// TestRankPoolDeterministicAcrossWorkers: identical pools ranked with
// different worker counts and gang sizes must produce identical clusters,
// and OnBatch progress must be serialized and monotonic up to completion.
func TestRankPoolDeterministicAcrossWorkers(t *testing.T) {
	task, golden, srcs := gatePool(t)
	st := testbench.RankingCached(9107, 0, task.Ifc)

	var ref *RankPoolResult
	for _, w := range []int{1, 2, 4} {
		for _, gangN := range []int{1, 2, 8} {
			var progress []int
			res, err := RankPool(context.Background(), srcs, st, RankPoolConfig{
				Backend: testbench.BackendCompiled, Workers: w, GangSize: gangN, Golden: golden,
				OnBatch: func(done, total int) { progress = append(progress, done, total) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
			} else if !reflect.DeepEqual(res.Clusters, ref.Clusters) {
				t.Fatalf("workers=%d gang=%d clusters diverged: %v vs %v", w, gangN, res.Clusters, ref.Clusters)
			}
			nUnits := (res.UniqueJobs + gangN - 1) / gangN
			if len(progress) != 2*nUnits {
				t.Fatalf("workers=%d gang=%d: %d OnBatch calls, want %d", w, gangN, len(progress)/2, nUnits)
			}
			for u := 0; u < nUnits; u++ {
				if progress[2*u] != u+1 || progress[2*u+1] != nUnits {
					t.Fatalf("workers=%d gang=%d: OnBatch call %d = (%d,%d), want (%d,%d)",
						w, gangN, u, progress[2*u], progress[2*u+1], u+1, nUnits)
				}
			}
		}
	}
}
