package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/resultstore"
	"repro/internal/testbench"
)

// storeProcMarker prefixes the one machine-readable line the child process
// emits; everything else on the test binary's stdout is go-test chatter.
const storeProcMarker = "STOREPROC-REPORT "

const (
	storeProcChildEnv = "VFOCUS_STORE_CHILD"
	storeProcDirEnv   = "VFOCUS_STORE_DIR"
)

// storeProcCluster is the portion of a Cluster that must be bit-identical
// across processes: membership, shared fingerprint, and rank score.
type storeProcCluster struct {
	Members     []int  `json:"members"`
	Fingerprint uint64 `json:"fingerprint"`
	Score       int    `json:"score"`
}

type storeProcReport struct {
	Clusters []storeProcCluster   `json:"clusters"`
	Stats    testbench.StoreStats `json:"stats"`
	StoreLen int                  `json:"store_len"`
}

// storeProcChildMain ranks the standard benchmark pool against a disk store
// rooted at dir and prints a storeProcReport. It runs inside a re-executed
// copy of the test binary, so its fingerprint memo is genuinely cold: only
// the on-disk store can spare it simulation work.
func storeProcChildMain(t *testing.T, dir string) {
	store, err := resultstore.NewDisk(dir)
	if err != nil {
		t.Fatalf("child: open disk store: %v", err)
	}
	prev := testbench.SetStore(store)
	defer testbench.SetStore(prev)
	testbench.ResetStoreStats()

	task := eval.Suite()[120]
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		t.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantVRank, profile.Name)
	cfg.Samples = 30
	cfg.RetryBaseDelay = 0
	cfg.Workers = 1
	pipe := New(client, cfg)

	cands := make([]Candidate, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		c, err := pipe.generateOne(context.Background(), task, i)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, c)
	}
	res := &Result{Task: task, FinalIndex: -1, Candidates: cands}
	if err := pipe.rank(context.Background(), res); err != nil {
		t.Fatalf("child: rank: %v", err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("child: ranking produced no clusters")
	}

	rep := storeProcReport{Stats: testbench.ReadStoreStats()}
	for _, cl := range res.Clusters {
		rep.Clusters = append(rep.Clusters, storeProcCluster{
			Members:     cl.Members,
			Fingerprint: cl.Fingerprint,
			Score:       cl.Score,
		})
	}
	if n, err := store.Len(); err == nil {
		rep.StoreLen = n
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("%s%s\n", storeProcMarker, out)
}

// storeProcRunChild re-executes this test binary restricted to
// TestCrossProcessStoreDeterminism with the child env set, and parses the
// report line back out of its output.
func storeProcRunChild(t *testing.T, dir string) storeProcReport {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^TestCrossProcessStoreDeterminism$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		storeProcChildEnv+"=1",
		storeProcDirEnv+"="+dir,
	)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("child process failed: %v\n%s", err, buf.String())
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > len(storeProcMarker) && line[:len(storeProcMarker)] == storeProcMarker {
			var rep storeProcReport
			if err := json.Unmarshal([]byte(line[len(storeProcMarker):]), &rep); err != nil {
				t.Fatalf("bad child report %q: %v", line, err)
			}
			return rep
		}
	}
	t.Fatalf("child emitted no report line:\n%s", buf.String())
	return storeProcReport{}
}

// TestCrossProcessStoreDeterminism proves the headline property of the disk
// store: a second, completely fresh process pointed at the same store
// directory ranks the identical pool with ZERO simulations — every
// fingerprint comes off disk — and produces bit-identical clusters. The two
// runs share no process state; only the content-addressed files connect
// them.
func TestCrossProcessStoreDeterminism(t *testing.T) {
	if os.Getenv(storeProcChildEnv) == "1" {
		storeProcChildMain(t, os.Getenv(storeProcDirEnv))
		return
	}
	if testing.Short() {
		t.Skip("re-executes the test binary twice")
	}

	dir := t.TempDir()
	cold := storeProcRunChild(t, dir)
	warm := storeProcRunChild(t, dir)

	if cold.Stats.Sims == 0 {
		t.Fatal("cold process reported zero simulations; harness is broken")
	}
	if cold.Stats.Puts == 0 {
		t.Fatal("cold process published nothing to the store")
	}
	if cold.StoreLen == 0 {
		t.Fatal("store is empty after the cold process")
	}
	if warm.Stats.Sims != 0 {
		t.Fatalf("warm process simulated %d times; want 0 (hits=%d misses=%d)",
			warm.Stats.Sims, warm.Stats.Hits, warm.Stats.Misses)
	}
	if warm.Stats.Hits == 0 {
		t.Fatal("warm process reported zero store hits")
	}
	if !reflect.DeepEqual(cold.Clusters, warm.Clusters) {
		t.Fatalf("clusters diverged across processes:\ncold: %+v\nwarm: %+v",
			cold.Clusters, warm.Clusters)
	}
}
