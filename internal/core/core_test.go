package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/testbench"
)

func pickTask(t *testing.T, id string) eval.Task {
	t.Helper()
	for _, task := range eval.Suite() {
		if task.ID == id {
			return task
		}
	}
	t.Fatalf("task %q not found", id)
	return eval.Task{}
}

func newPipeline(t *testing.T, v Variant, model string, tasks []eval.Task, samples int) *Pipeline {
	t.Helper()
	profile, err := llm.ProfileByName(model)
	if err != nil {
		t.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, tasks)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(v, model)
	cfg.Samples = samples
	cfg.RetryBaseDelay = 0
	return New(client, cfg)
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		VariantBaseline: "Baseline",
		VariantVRank:    "VRank",
		VariantPreVRank: "Pre+VRank",
		VariantVFocus:   "VFocus",
		Variant(99):     "Variant(99)",
	} {
		if v.String() != want {
			t.Errorf("%d = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(VariantVFocus, "deepseek-r1")
	if cfg.LminPct != 0 {
		t.Error("deepseek should have Lmin=0 per Fig. 3a")
	}
	cfg2 := DefaultConfig(VariantVFocus, "qwq-32b")
	if cfg2.LminPct != 0.10 {
		t.Error("qwq should drop the shortest 10%")
	}
	if cfg2.LmaxPct != 0.75 {
		t.Error("Lmax should be the 75th percentile")
	}
	if cfg2.EarlyExitFrac != 0.90 {
		t.Error("early exit at 90%")
	}
	if cfg2.MaxRetries != 5 {
		t.Error("paper retries 5 times")
	}
}

func TestBaselineRun(t *testing.T) {
	task := pickTask(t, "cmb_gate_00_and2")
	pipe := newPipeline(t, VariantBaseline, "deepseek-r1", []eval.Task{task}, 10)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 10 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	if res.Final == "" || res.FinalIndex < 0 {
		t.Error("baseline must pick something")
	}
	if len(res.Clusters) != 0 {
		t.Error("baseline must not cluster")
	}
	for _, c := range res.Candidates {
		if c.Filtered {
			t.Error("baseline must not filter")
		}
	}
}

func TestVRankClusters(t *testing.T) {
	task := pickTask(t, "seq_cnt_00_bin4")
	pipe := newPipeline(t, VariantVRank, "deepseek-r1", []eval.Task{task}, 20)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	// Clusters sorted by score, and scores equal member counts.
	prev := 1 << 30
	total := 0
	for _, cl := range res.Clusters {
		if cl.Score > prev {
			t.Error("clusters not sorted by score")
		}
		prev = cl.Score
		if cl.Score != len(cl.Members) {
			t.Errorf("score %d != members %d", cl.Score, len(cl.Members))
		}
		total += len(cl.Members)
	}
	valid := 0
	for _, c := range res.Candidates {
		if c.Valid && c.SimOK() {
			valid++
		}
	}
	if total != valid {
		t.Errorf("clustered %d != simulated-ok %d", total, valid)
	}
	// The final pick must come from the top cluster.
	found := false
	for _, m := range res.Clusters[0].Members {
		if m == res.FinalIndex {
			found = true
		}
	}
	if !found {
		t.Error("final pick not in top cluster")
	}
	// No refinement in VRank.
	if res.Stats.RefineCalls != 0 || res.Stats.JudgeCalls != 0 {
		t.Error("VRank must not refine")
	}
}

func TestDensityFilterBounds(t *testing.T) {
	task := pickTask(t, "seq_fsm_03")
	pipe := newPipeline(t, VariantPreVRank, "qwq-32b", []eval.Task{task}, 30)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, c := range res.Candidates {
		if !c.Valid {
			continue
		}
		if c.Filtered {
			if c.NormLen > pipe.Config().LminPct && c.NormLen < pipe.Config().LmaxPct && c.ReasoningTokens > 0 {
				t.Errorf("candidate %d filtered inside the sweet spot (norm=%v)", c.Index, c.NormLen)
			}
		} else {
			kept++
			if c.ReasoningTokens > 0 && c.NormLen >= 0 {
				if c.NormLen <= pipe.Config().LminPct-1e-9 || c.NormLen >= pipe.Config().LmaxPct+1e-9 {
					t.Errorf("candidate %d kept outside the sweet spot (norm=%v)", c.Index, c.NormLen)
				}
			}
		}
	}
	if kept == 0 {
		t.Error("filter kept nothing")
	}
}

func TestVFocusRefinesAndStaysSound(t *testing.T) {
	tasks := []eval.Task{
		pickTask(t, "seq_rec_00_101_overlap"),
		pickTask(t, "cmb_kmap_03"),
		pickTask(t, "seq_cnt_07_bcd2"),
	}
	pipe := newPipeline(t, VariantVFocus, "qwq-32b", tasks, 30)
	refines := 0
	for _, task := range tasks {
		res, err := pipe.Run(context.Background(), task)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		if res.Final == "" {
			t.Errorf("%s: empty final", task.ID)
		}
		refines += res.Stats.RefineCalls + res.Stats.JudgeCalls
		for _, c := range res.Candidates {
			if c.Refined && !c.SimOK() {
				t.Errorf("%s: admitted refined candidate without clean simulation", task.ID)
			}
		}
	}
	if refines == 0 {
		t.Error("VFocus never refined across three tasks")
	}
}

func TestEarlyExitSkipsInterCluster(t *testing.T) {
	// An ultra-easy task: one dominant cluster, so early exit must fire
	// and no judge call should happen.
	task := pickTask(t, "cmb_gate_00_and2")
	pipe := newPipeline(t, VariantVFocus, "deepseek-r1", []eval.Task{task}, 30)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyExit {
		t.Skip("dominant cluster did not reach 90% on this seed")
	}
	if res.JudgeVoted {
		t.Error("early exit must skip inter-cluster judging")
	}
	if res.Stats.RefineCalls > 1 {
		t.Errorf("early exit should refine only the top cluster, got %d calls", res.Stats.RefineCalls)
	}
}

// --- mock client for failure-path tests -----------------------------------------

type mockClient struct {
	name      string
	genFn     func(req llm.GenerateRequest) (llm.Response, error)
	refineFn  func(req llm.RefineRequest) (llm.Response, error)
	judgeFn   func(req llm.JudgeRequest) (llm.JudgeResponse, error)
	genCalls  int
	refCalls  int
	judgeCall int
}

var _ llm.Client = (*mockClient)(nil)

func (m *mockClient) ModelName() string { return m.name }

func (m *mockClient) Generate(_ context.Context, req llm.GenerateRequest) (llm.Response, error) {
	m.genCalls++
	return m.genFn(req)
}

func (m *mockClient) Refine(_ context.Context, req llm.RefineRequest) (llm.Response, error) {
	m.refCalls++
	if m.refineFn == nil {
		return llm.Response{}, llm.ErrTransient
	}
	return m.refineFn(req)
}

func (m *mockClient) JudgeOutput(_ context.Context, req llm.JudgeRequest) (llm.JudgeResponse, error) {
	m.judgeCall++
	if m.judgeFn == nil {
		return llm.JudgeResponse{}, llm.ErrTransient
	}
	return m.judgeFn(req)
}

func TestTransientRetryThenSuccess(t *testing.T) {
	task := pickTask(t, "cmb_gate_00_and2")
	fails := 2
	mock := &mockClient{
		name: "mock",
		genFn: func(req llm.GenerateRequest) (llm.Response, error) {
			if fails > 0 {
				fails--
				return llm.Response{}, fmt.Errorf("%w: rate limited", llm.ErrTransient)
			}
			return llm.Response{Code: task.Golden, ReasoningTokens: 100}, nil
		},
	}
	var slept []time.Duration
	cfg := DefaultConfig(VariantVRank, "mock")
	cfg.Samples = 3
	cfg.RetryBaseDelay = time.Millisecond
	cfg.Sleeper = func(d time.Duration) { slept = append(slept, d) }
	pipe := New(mock, cfg)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == "" {
		t.Error("no final pick")
	}
	if len(slept) != 2 {
		t.Errorf("expected 2 backoff sleeps, got %d", len(slept))
	}
	if len(slept) == 2 && slept[1] <= slept[0] {
		t.Error("backoff should grow")
	}
}

func TestPersistentTransientFails(t *testing.T) {
	task := pickTask(t, "cmb_gate_00_and2")
	mock := &mockClient{
		name: "mock",
		genFn: func(req llm.GenerateRequest) (llm.Response, error) {
			return llm.Response{}, fmt.Errorf("%w: always down", llm.ErrTransient)
		},
	}
	cfg := DefaultConfig(VariantVRank, "mock")
	cfg.Samples = 2
	cfg.RetryBaseDelay = 0
	pipe := New(mock, cfg)
	_, err := pipe.Run(context.Background(), task)
	if !errors.Is(err, ErrLLM) {
		t.Errorf("got %v, want ErrLLM", err)
	}
}

func TestSyntaxRetryOnlyForPrerankVariants(t *testing.T) {
	task := pickTask(t, "cmb_gate_00_and2")
	broken := "module top_module (input a" // never valid
	mkMock := func() *mockClient {
		return &mockClient{
			name: "mock",
			genFn: func(req llm.GenerateRequest) (llm.Response, error) {
				if req.Attempt >= 4 {
					return llm.Response{Code: task.Golden, ReasoningTokens: 50}, nil
				}
				return llm.Response{Code: broken, ReasoningTokens: 50}, nil
			},
		}
	}

	// VRank: accepts the first (broken) completion.
	cfgV := DefaultConfig(VariantVRank, "mock")
	cfgV.Samples = 1
	cfgV.RetryBaseDelay = 0
	resV, err := New(mkMock(), cfgV).Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if resV.Candidates[0].Valid {
		t.Error("VRank candidate should be the broken first attempt")
	}

	// VFocus: retries until the golden arrives.
	cfgF := DefaultConfig(VariantVFocus, "mock")
	cfgF.Samples = 1
	cfgF.RetryBaseDelay = 0
	resF, err := New(mkMock(), cfgF).Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !resF.Candidates[0].Valid {
		t.Error("VFocus should retry to a valid candidate")
	}
	if resF.Candidates[0].Retries == 0 {
		t.Error("retry count not recorded")
	}
}

func TestAllInvalidPoolStillReturns(t *testing.T) {
	task := pickTask(t, "cmb_gate_00_and2")
	mock := &mockClient{
		name: "mock",
		genFn: func(req llm.GenerateRequest) (llm.Response, error) {
			return llm.Response{Code: "garbage !!", ReasoningTokens: 10}, nil
		},
	}
	cfg := DefaultConfig(VariantVFocus, "mock")
	cfg.Samples = 3
	cfg.RetryBaseDelay = 0
	res, err := New(mock, cfg).Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == "" {
		t.Error("pipeline should fall back to the raw first sample")
	}
	if len(res.Clusters) != 0 {
		t.Error("invalid candidates must not cluster")
	}
}

func TestDeterministicPipeline(t *testing.T) {
	task := pickTask(t, "seq_shr_01_sipo8")
	run := func() *Result {
		pipe := newPipeline(t, VariantVFocus, "o3-mini-high", []eval.Task{task}, 20)
		res, err := pipe.Run(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Final != b.Final {
		t.Error("pipeline not deterministic")
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Error("cluster structure not deterministic")
	}
}

func TestGuidelinesMentionKeyRules(t *testing.T) {
	for _, want := range []string{"non-blocking", "reg", "default", "width"} {
		if !containsFold(Guidelines, want) {
			t.Errorf("guidelines missing %q", want)
		}
	}
}

func containsFold(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			match := true
			for j := 0; j < len(sub); j++ {
				a, b := s[i+j], sub[j]
				if 'A' <= a && a <= 'Z' {
					a += 32
				}
				if 'A' <= b && b <= 'Z' {
					b += 32
				}
				if a != b {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	})()
}

func TestTraceAgreementSymmetry(t *testing.T) {
	// Ranking uses strict agreement; spot-check the agreement helpers from
	// the pipeline's perspective on a real task, on both the streaming
	// fingerprint path and the legacy retained-trace path.
	task := pickTask(t, "cmb_add_03_add8")
	for _, legacy := range []bool{false, true} {
		profile, err := llm.ProfileByName("deepseek-r1")
		if err != nil {
			t.Fatal(err)
		}
		client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(VariantVRank, profile.Name)
		cfg.Samples = 12
		cfg.RetryBaseDelay = 0
		cfg.LegacyTraces = legacy
		res, err := New(client, cfg).Run(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		for _, cl := range res.Clusters {
			first := &res.Candidates[cl.Members[0]]
			if legacy && (first.Trace == nil || first.FPTrace != nil) {
				t.Fatal("legacy path must retain traces and skip fingerprint records")
			}
			if !legacy && (first.FPTrace == nil || first.Trace != nil) {
				t.Fatal("fingerprint path must not retain ranking traces")
			}
			for _, m := range cl.Members[1:] {
				other := &res.Candidates[m]
				if legacy && !testbench.Agrees(first.Trace, other.Trace) {
					t.Error("legacy cluster members disagree")
				}
				if !legacy && !testbench.FPAgrees(first.FPTrace, other.FPTrace) {
					t.Error("fingerprint cluster members disagree")
				}
			}
		}
	}
}
