package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/testbench"
)

// runPath runs one pipeline configured for either the streaming fingerprint
// path or the legacy retained-trace path.
func runPath(t *testing.T, task eval.Task, v Variant, model string, samples, workers int,
	backend testbench.Backend, legacy bool) *Result {
	t.Helper()
	profile, err := llm.ProfileByName(model)
	if err != nil {
		t.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(v, profile.Name)
	cfg.Samples = samples
	cfg.RetryBaseDelay = 0
	cfg.Backend = backend
	cfg.Workers = workers
	cfg.LegacyTraces = legacy
	res, err := New(client, cfg).Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameDecisions requires every pipeline decision — filtering,
// clustering, refinement admissions, judge votes, and the final pick — to be
// identical between the two results. Simulation-run counts are deliberately
// excluded: the fingerprint path re-simulates representatives lazily, which
// changes how much work ran, never what was decided.
func assertSameDecisions(t *testing.T, label string, legacy, fp *Result) {
	t.Helper()
	if legacy.Final != fp.Final || legacy.FinalIndex != fp.FinalIndex {
		t.Fatalf("%s: final pick diverges (legacy idx %d, fingerprint idx %d)",
			label, legacy.FinalIndex, fp.FinalIndex)
	}
	if legacy.EarlyExit != fp.EarlyExit || legacy.JudgeVoted != fp.JudgeVoted ||
		legacy.RefinedUsed != fp.RefinedUsed {
		t.Fatalf("%s: refinement flags diverge: legacy=%+v fingerprint=%+v",
			label, *legacy, *fp)
	}
	if !reflect.DeepEqual(legacy.Clusters, fp.Clusters) {
		t.Fatalf("%s: clusters diverge\nlegacy: %+v\nfingerprint: %+v",
			label, legacy.Clusters, fp.Clusters)
	}
	if len(legacy.Candidates) != len(fp.Candidates) {
		t.Fatalf("%s: candidate pool sizes diverge: %d vs %d",
			label, len(legacy.Candidates), len(fp.Candidates))
	}
	for i := range legacy.Candidates {
		lc, fc := &legacy.Candidates[i], &fp.Candidates[i]
		if lc.Code != fc.Code || lc.Valid != fc.Valid || lc.Filtered != fc.Filtered ||
			lc.Refined != fc.Refined || lc.NormLen != fc.NormLen {
			t.Fatalf("%s: candidate %d bookkeeping diverges", label, i)
		}
		if lc.Trace != nil && fc.FPTrace != nil {
			if lc.Trace.Fingerprint() != fc.FPTrace.Fingerprint() {
				t.Fatalf("%s: candidate %d fingerprint value diverges between representations", label, i)
			}
		}
	}
	if legacy.Stats.GenerateCalls != fp.Stats.GenerateCalls ||
		legacy.Stats.RefineCalls != fp.Stats.RefineCalls ||
		legacy.Stats.JudgeCalls != fp.Stats.JudgeCalls {
		t.Fatalf("%s: model-call stats diverge: legacy=%+v fingerprint=%+v",
			label, legacy.Stats, fp.Stats)
	}
}

// TestFingerprintPathMatchesLegacyTraces is the differential referee for the
// streaming ranking path: across task families, models, variants, worker
// counts, and both simulation backends, the fingerprint path must make
// bit-identical decisions to the retained string-trace path.
func TestFingerprintPathMatchesLegacyTraces(t *testing.T) {
	all := eval.Suite()
	// A spread covering combinational and sequential families, including the
	// tasks whose cluster structure exercises judging and focused refinement.
	for _, tc := range []struct {
		taskIdx int
		model   string
		variant Variant
		workers int
	}{
		{0, "deepseek-r1", VariantVFocus, 1},
		{30, "qwq-32b", VariantVFocus, 1},
		{60, "qwq-32b", VariantVFocus, 4},
		{90, "o3-mini-high", VariantVFocus, 1},
		{120, "qwq-32b", VariantVFocus, 4},
		{150, "deepseek-r1", VariantVFocus, 1},
		{45, "qwq-32b", VariantVRank, 1},
		{100, "qwq-32b", VariantPreVRank, 4},
	} {
		task := all[tc.taskIdx]
		label := task.ID + "/" + tc.model + "/" + tc.variant.String()
		legacy := runPath(t, task, tc.variant, tc.model, 20, tc.workers, testbench.BackendCompiled, true)
		fp := runPath(t, task, tc.variant, tc.model, 20, tc.workers, testbench.BackendCompiled, false)
		assertSameDecisions(t, label, legacy, fp)
	}
}

// TestFingerprintPathMatchesLegacyInterpreter repeats the differential on
// the interpreter backend (which lacks the streaming HashOutput fast path,
// exercising the Value-rendering fallback in RunFingerprint).
func TestFingerprintPathMatchesLegacyInterpreter(t *testing.T) {
	all := eval.Suite()
	for _, idx := range []int{30, 120} {
		task := all[idx]
		legacy := runPath(t, task, VariantVFocus, "qwq-32b", 12, 1, testbench.BackendInterpreter, true)
		fp := runPath(t, task, VariantVFocus, "qwq-32b", 12, 1, testbench.BackendInterpreter, false)
		assertSameDecisions(t, task.ID+"/interpreter", legacy, fp)
	}
}
