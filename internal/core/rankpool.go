package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/eval"
	"repro/internal/serve/faultinject"
	"repro/internal/sim"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
)

// RankPoolConfig configures one RankPool invocation. The zero value ranks
// sequentially on the compiled backend at DefaultGangSize.
type RankPoolConfig struct {
	// Backend selects the simulation backend for every run.
	Backend testbench.Backend
	// Workers bounds the concurrent simulation units (gang batches, or
	// individual candidates on the legacy path). Results are bit-identical
	// for any value; zero or one runs inline without goroutines.
	Workers int
	// GangSize is the lockstep gang width; zero selects DefaultGangSize.
	GangSize int
	// PerLaneGang selects the per-lane referee gang model over SoA.
	PerLaneGang bool
	// LegacyTraces retains full printed traces instead of fingerprints.
	LegacyTraces bool
	// Golden, when set, anchors delta compilation and the shared SoA
	// program on the task's golden design. Jobs submitted for the same
	// golden therefore share one compiled Design, one schedule binding,
	// and one fingerprint-memo universe across concurrent RankPool calls —
	// the caches are all process-wide and keyed by content.
	Golden *ast.Source
	// OnBatch, when set, is called after each completed simulation unit
	// with (completed, total) counts. Calls are serialized and monotonic
	// in completed; they arrive on worker goroutines, so the callback must
	// be fast and must not block on the caller's consumers.
	OnBatch func(done, total int)
}

// RankPoolResult is the outcome of ranking one candidate pool. All slices
// are aligned with RankPool's srcs argument; entries for nil sources stay
// nil.
type RankPoolResult struct {
	// FPs holds each candidate's fingerprint trace (default path).
	FPs []*testbench.FPTrace
	// Traces holds each candidate's printed trace (LegacyTraces path).
	Traces []*testbench.Trace
	// Clusters groups candidates by strict full-trace agreement, scored by
	// size and sorted by (Score desc, Fingerprint asc); Members hold
	// indices into srcs.
	Clusters []Cluster
	// UniqueJobs is the number of canonically distinct designs simulated.
	UniqueJobs int
}

// RankPool simulates a pool of candidate sources under one stimulus and
// clusters them by strict full-trace agreement — the paper's ranking by
// simulation consistency (Eq. 2-3), extracted from Pipeline so the daemon
// can rank a (golden, candidate-pool) job directly. srcs is the pool;
// a nil entry marks an ineligible candidate (invalid, filtered) that takes
// no part in simulation or clustering but keeps indices aligned.
//
// Canonically identical candidates share one simulation; unique designs run
// gang-batched on a Workers-bounded pool. Results are bit-identical for any
// worker count and gang size.
//
// RankPool observes ctx between gang batches and (through the testbench)
// between test cases, so a cancel lands in bounded time; on cancellation it
// returns ctx's error with every fingerprint-memo claim released, leaving
// all process-wide caches reusable — re-running the same pool yields
// bit-identical results. A panic while simulating one candidate is confined
// to that candidate's trace error; a panic outside the per-candidate
// recovery errors only its own batch. Neither kills the calling process.
func RankPool(ctx context.Context, srcs []*ast.Source, st *testbench.Stimulus, cfg RankPoolConfig) (*RankPoolResult, error) {
	// Pass 1: dedup canonically identical candidates, first-seen order.
	jobOf := make([]int, len(srcs))
	jobIdx := make(map[string]int, len(srcs))
	jobs := make([]*ast.Source, 0, len(srcs))
	for i, src := range srcs {
		if src == nil {
			continue
		}
		key := sim.CanonicalKey(src)
		j, dup := jobIdx[key]
		if !dup {
			j = len(jobs)
			jobIdx[key] = j
			jobs = append(jobs, src)
		}
		jobOf[i] = j
	}
	out := &RankPoolResult{UniqueJobs: len(jobs)}

	// Pass 2: simulate each unique design. The fingerprint path batches
	// jobs into gangs of GangSize lanes advancing in lockstep over the
	// shared schedule; a worker picks up a whole gang. Gang results are
	// bit-identical to solo runs, and batches are indexed, so results are
	// bit-identical for any gang size and worker count. The legacy-trace
	// referee keeps its one-candidate-per-worker shape.
	var (
		traces []*testbench.Trace
		fps    []*testbench.FPTrace
		run    func(b int) error
		nUnits int
	)
	gang := cfg.GangSize
	if gang <= 0 {
		gang = DefaultGangSize
	}
	if cfg.LegacyTraces {
		nUnits = len(jobs)
		traces = make([]*testbench.Trace, len(jobs))
		run = func(j int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			// A crash while tracing one candidate becomes that candidate's
			// private error; the worker and its siblings keep going.
			defer func() {
				if r := recover(); r != nil {
					traces[j] = &testbench.Trace{Ifc: st.Ifc, Err: fmt.Errorf("%w: %v", testbench.ErrSimPanic, r)}
				}
			}()
			traces[j] = testbench.RunBackend(jobs[j], eval.TopModule, st, cfg.Backend)
			return nil
		}
	} else {
		nUnits = (len(jobs) + gang - 1) / gang
		fps = make([]*testbench.FPTrace, len(jobs))
		mode := testbench.GangSoA
		if cfg.PerLaneGang {
			mode = testbench.GangPerLane
		}
		// The compiled golden anchors every gang: it is the delta-compilation
		// base for candidate lanes AND the owner of the shared SoA program.
		// Candidates habitually rename internal registers while keeping whole
		// processes identical to the golden, so anchoring on the golden (not
		// on whichever candidate happens to lead the batch) is what lets the
		// name-blind sharing criterion coalesce those processes into one
		// gang-program walk. Parse and compile are both process-wide caches,
		// so this costs one lookup per rank call.
		var base *sim.Design
		if cfg.Golden != nil && cfg.Backend != testbench.BackendInterpreter {
			if d, derr := sim.CompileCached(cfg.Golden, eval.TopModule); derr == nil {
				base = d
			}
		}
		// Gang-aware batching: order jobs by behavior class before slicing
		// into gangs, so alpha-equivalent candidates (register renames,
		// repeated mutations — the bulk of an LLM pool's redundancy) land in
		// the same gang, where the SoA backend dedups whole lanes and shares
		// kernels. Each lane's fingerprints are independent of its batch, so
		// any ordering yields bit-identical decisions; sorting is stable on
		// first-seen order, keeping results deterministic. The delta compile
		// feeds the same process-wide cache the gang's bind step uses, so
		// this costs one cache lookup per job per rank call.
		if base != nil && len(jobs) > gang {
			type jobKey struct {
				h uint64
				j int
			}
			keys := make([]jobKey, len(jobs))
			for j, src := range jobs {
				keys[j] = jobKey{j: j}
				if d, derr := sim.CompileDeltaCached(base, src, eval.TopModule); derr == nil {
					keys[j].h = d.GangClassHash()
				}
			}
			sort.Slice(keys, func(a, b int) bool {
				if keys[a].h != keys[b].h {
					return keys[a].h < keys[b].h
				}
				return keys[a].j < keys[b].j
			})
			sorted := make([]*ast.Source, len(jobs))
			inv := make([]int, len(jobs))
			for k := range keys {
				sorted[k] = jobs[keys[k].j]
				inv[keys[k].j] = k
			}
			jobs = sorted
			for i, src := range srcs {
				if src != nil {
					jobOf[i] = inv[jobOf[i]]
				}
			}
		}
		run = func(b int) error {
			lo := b * gang
			hi := lo + gang
			if hi > len(jobs) {
				hi = len(jobs)
			}
			// Per-candidate crashes are already confined inside the gang
			// (crashed walks re-run unresolved lanes solo); this recover is
			// the last line for anything outside that, erroring only this
			// batch's candidates instead of unwinding the worker.
			defer func() {
				if r := recover(); r != nil {
					perr := fmt.Errorf("%w: %v", testbench.ErrSimPanic, r)
					for j := lo; j < hi; j++ {
						if fps[j] == nil {
							fps[j] = &testbench.FPTrace{Ifc: st.Ifc, Err: perr}
						}
					}
				}
			}()
			faultinject.Fire(faultinject.PointRankBatch, "")
			batch, err := testbench.RunFingerprintGangModeCtx(ctx, jobs[lo:hi], eval.TopModule, st, cfg.Backend, base, mode)
			if err != nil {
				return err
			}
			copy(fps[lo:hi], batch)
			return nil
		}
	}
	if err := runUnits(ctx, nUnits, cfg.Workers, cfg.OnBatch, run); err != nil {
		return nil, err
	}

	// Pass 3a: attach results in candidate order and count cluster sizes,
	// so member slices below allocate exactly once at final size.
	fpOf := make([]uint64, len(srcs))
	okOf := make([]bool, len(srcs))
	counts := make(map[uint64]int, len(jobs))
	if cfg.LegacyTraces {
		out.Traces = make([]*testbench.Trace, len(srcs))
	} else {
		out.FPs = make([]*testbench.FPTrace, len(srcs))
	}
	for i, src := range srcs {
		if src == nil {
			continue
		}
		if cfg.LegacyTraces {
			tr := traces[jobOf[i]]
			out.Traces[i] = tr
			if tr.Err != nil {
				continue // runtime failures agree with nobody
			}
			fpOf[i] = tr.Fingerprint()
		} else {
			fp := fps[jobOf[i]]
			out.FPs[i] = fp
			if fp.Err != nil {
				continue
			}
			fpOf[i] = fp.Fingerprint()
		}
		okOf[i] = true
		counts[fpOf[i]]++
	}

	// Pass 3b: cluster sequentially in candidate order (deterministic; the
	// final (score, fingerprint) sort is a total order, so insertion order
	// never shows through).
	byFP := make(map[uint64]*Cluster, len(counts))
	out.Clusters = make([]Cluster, 0, len(counts))
	for i := range srcs {
		if !okOf[i] {
			continue
		}
		fp := fpOf[i]
		cl := byFP[fp]
		if cl == nil {
			out.Clusters = append(out.Clusters, Cluster{
				Fingerprint: fp,
				Members:     make([]int, 0, counts[fp]),
			})
			cl = &out.Clusters[len(out.Clusters)-1]
			byFP[fp] = cl
		}
		cl.Members = append(cl.Members, i)
	}
	for i := range out.Clusters {
		out.Clusters[i].Score = len(out.Clusters[i].Members)
	}
	sort.Slice(out.Clusters, func(a, b int) bool {
		if out.Clusters[a].Score != out.Clusters[b].Score {
			return out.Clusters[a].Score > out.Clusters[b].Score
		}
		return out.Clusters[a].Fingerprint < out.Clusters[b].Fingerprint
	})
	return out, nil
}

// runUnits drives run(0..n-1) on a workers-bounded pool. Feeding stops on
// the first error or on ctx cancellation; already-started units run to
// their own ctx checks. The first error wins (a ctx error if nothing else
// failed first).
func runUnits(ctx context.Context, n, workers int, onDone func(done, total int), run func(b int) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for b := 0; b < n; b++ {
			if err := run(b); err != nil {
				return err
			}
			if onDone != nil {
				onDone(b+1, n)
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		done     int
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				err := run(b)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					done++
					if onDone != nil {
						onDone(done, n)
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for b := 0; b < n; b++ {
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break
		}
		select {
		case next <- b:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
