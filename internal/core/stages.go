package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
	"repro/internal/xrng"
)

// workerCount bounds the ranking pool: never more goroutines than jobs, and
// one (inline, no goroutines) when the config leaves Workers unset.
func (p *Pipeline) workerCount(jobs int) int {
	w := p.cfg.Workers
	if w < 1 {
		w = 1
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// rngFor derives a deterministic RNG for selection decisions. Selection
// draws a handful of values per task, but math/rand's 607-word seeding per
// derivation still summed to a visible profile slice across tasks × variants
// × runs; xrng seeds in one word.
func (p *Pipeline) rngFor(taskID, role string) *xrng.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", p.cfg.SelectSeed, taskID, role)
	return xrng.New(h.Sum64())
}

// pickBaseline selects a uniformly random candidate (the paper's random-pick
// baseline; pass@k aggregates over the whole pool, selection here is for the
// CLI's benefit).
func (p *Pipeline) pickBaseline(res *Result) {
	rng := p.rngFor(res.Task.ID, "baseline")
	idx := rng.Intn(len(res.Candidates))
	res.Final = res.Candidates[idx].Code
	res.FinalIndex = idx
}

// minFilteredPool is the smallest candidate pool Density-guided Filtering
// is allowed to leave behind. Percentile bounds estimated from a handful of
// samples are noise, and clustering a 3-candidate pool is worse than
// clustering an unfiltered small pool — so for tiny sample budgets the
// filter steps aside and pre-ranking contributes through the validity
// retry alone.
const minFilteredPool = 8

// densityFilter implements Density-guided Filtering: compute each valid
// candidate's min-max normalized reasoning length over the task's sample
// pool and drop candidates outside (LminPct, LmaxPct). Candidates without a
// reasoning trace are dropped whenever a lower bound exists. Two guards
// keep the filter from destroying the pool: it never removes every
// candidate, and it backs off entirely when it would leave fewer than
// minFilteredPool candidates for ranking.
func (p *Pipeline) densityFilter(ctx context.Context, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var lens []int
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.Valid && c.ReasoningTokens > 0 {
			lens = append(lens, c.ReasoningTokens)
		}
	}
	if len(lens) < 4 {
		return nil // not enough signal to estimate the sweet spot
	}
	minL, maxL := lens[0], lens[0]
	for _, l := range lens {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	span := maxL - minL
	if span == 0 {
		return nil
	}
	kept := 0
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if !c.Valid {
			continue
		}
		if c.ReasoningTokens <= 0 {
			if p.cfg.LminPct > 0 {
				c.Filtered = true
			}
			continue
		}
		c.NormLen = float64(c.ReasoningTokens-minL) / float64(span)
		if c.NormLen <= p.cfg.LminPct || c.NormLen >= p.cfg.LmaxPct {
			c.Filtered = true
		} else {
			kept++
		}
	}
	if kept == 0 || (kept < minFilteredPool && kept < len(lens)) {
		for i := range res.Candidates {
			res.Candidates[i].Filtered = false
		}
	}
	return nil
}

// rank simulates every usable candidate under the generated printing
// testbench and clusters by strict full-trace agreement, scoring clusters by
// size (the paper's Eq. 2-3). The work — dedup, gang-batched concurrent
// simulation, clustering — lives in RankPool; rank maps the candidate pool
// in and attaches the aligned results back. Results are bit-identical for
// any worker count and gang size.
//
// By default each run streams straight to a per-case fingerprint record
// (testbench.RunFingerprint): no trace string is ever built, and the only
// per-candidate retention is a handful of uint64s. Config.LegacyTraces
// restores the retained-Trace path; both cluster on the same fingerprint
// values, so every downstream decision is identical.
func (p *Pipeline) rank(ctx context.Context, res *Result) error {
	// Cached: every variant of a (task, run) pair re-derives this exact
	// stimulus, and it is read-only from here on.
	st := testbench.RankingCached(p.cfg.TBSeed+int64(res.Task.Index), p.cfg.TBImperfection, res.Task.Ifc)
	res.rankingStimulus = st

	srcs := make([]*ast.Source, len(res.Candidates))
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.Valid && !c.Filtered {
			srcs[i] = c.Source
		}
	}
	var golden *ast.Source
	if p.cfg.Backend != testbench.BackendInterpreter {
		if gsrc, gerr := eval.ParseCached(res.Task.Golden); gerr == nil {
			golden = gsrc
		}
	}
	pool, err := RankPool(ctx, srcs, st, RankPoolConfig{
		Backend:      p.cfg.Backend,
		Workers:      p.cfg.Workers,
		GangSize:     p.cfg.GangSize,
		PerLaneGang:  p.cfg.PerLaneGang,
		LegacyTraces: p.cfg.LegacyTraces,
		Golden:       golden,
	})
	if err != nil {
		return err
	}
	for i := range res.Candidates {
		if srcs[i] == nil {
			continue
		}
		if p.cfg.LegacyTraces {
			res.Candidates[i].Trace = pool.Traces[i]
		} else {
			res.Candidates[i].FPTrace = pool.FPs[i]
		}
	}
	res.Stats.SimRuns += pool.UniqueJobs
	res.Clusters = pool.Clusters
	return nil
}

// refine implements post-ranking refinement: intra-cluster reconciliation on
// the top clusters, and inter-cluster divergence resolution (output judging
// on simple-description tasks, focused refinement otherwise). Early exit
// skips inter-cluster work when the top cluster dominates.
func (p *Pipeline) refine(ctx context.Context, res *Result) error {
	ranked := 0
	for _, cl := range res.Clusters {
		ranked += cl.Score
	}
	if ranked == 0 {
		return nil
	}
	top := res.Clusters[0]
	dominant := float64(top.Score) >= p.cfg.EarlyExitFrac*float64(ranked)
	res.EarlyExit = dominant

	k := p.cfg.TopClusters
	if k > len(res.Clusters) {
		k = len(res.Clusters)
	}
	if dominant {
		k = 1 // early exit: intra-cluster only, on the dominant cluster
	}

	// Intra-cluster: reconcile two samples of each top cluster.
	for ci := 0; ci < k; ci++ {
		if err := p.refineIntra(ctx, res, ci); err != nil {
			return err
		}
	}

	// Inter-cluster: resolve the top-1 vs top-2 divergence.
	if !dominant && len(res.Clusters) >= 2 {
		if err := p.refineInter(ctx, res); err != nil {
			return err
		}
	}
	return nil
}

// refineIntra asks the model to reconcile two implementations from one
// cluster. The refined candidate is accepted into the pool only if it stays
// behaviorally close to its source cluster (it is meant to fix what the
// imperfect testbench under-covers, not to change covered behavior).
func (p *Pipeline) refineIntra(ctx context.Context, res *Result, ci int) error {
	cl := &res.Clusters[ci]
	rng := p.rngFor(res.Task.ID, fmt.Sprintf("intra-%d", ci))
	a := cl.Members[rng.Intn(len(cl.Members))]
	b := cl.Members[rng.Intn(len(cl.Members))]
	if len(cl.Members) > 1 {
		for b == a {
			b = cl.Members[rng.Intn(len(cl.Members))]
		}
	}
	resp, err := p.refineWithTransientRetry(ctx, llm.RefineRequest{
		TaskID:      res.Task.ID,
		Spec:        res.Task.Spec,
		CandidateA:  res.Candidates[a].Code,
		CandidateB:  res.Candidates[b].Code,
		SampleIndex: ci,
	})
	if err != nil {
		if errors.Is(err, ErrLLM) {
			return nil // refinement is best-effort; keep ranked result
		}
		return err
	}
	res.Stats.RefineCalls++
	p.admitRefined(res, ci, resp.Code)
	return nil
}

// --- Ranked-representation accessors ----------------------------------------------
//
// Refinement compares behaviors through per-case fingerprints, which live on
// FPTrace on the default streaming path and derive (memoized) from the
// printed strings on the legacy path. These accessors make every agreement
// decision representation-blind, so both paths take the same branches.

// rankErr returns the candidate's ranking-run failure, if any.
func (c *Candidate) rankErr() error {
	if c.FPTrace != nil {
		return c.FPTrace.Err
	}
	if c.Trace != nil {
		return c.Trace.Err
	}
	return nil
}

// rankCases returns the number of completed ranking test cases.
func (c *Candidate) rankCases() int {
	if c.FPTrace != nil {
		return len(c.FPTrace.CaseFPs)
	}
	if c.Trace != nil {
		return len(c.Trace.Cases)
	}
	return 0
}

// rankCaseFP returns the fingerprint of ranking test case i.
func (c *Candidate) rankCaseFP(i int) uint64 {
	if c.FPTrace != nil {
		return c.FPTrace.CaseFPs[i]
	}
	return c.Trace.Cases[i].Fingerprint()
}

// rankedCaseAgrees mirrors testbench.CaseAgrees over ranked candidates.
func rankedCaseAgrees(a, b *Candidate, i int) bool {
	ae, be := a.rankErr(), b.rankErr()
	if ae != nil || be != nil {
		return ae != nil && be != nil && ae.Error() == be.Error()
	}
	if i >= a.rankCases() || i >= b.rankCases() {
		return false
	}
	return a.rankCaseFP(i) == b.rankCaseFP(i)
}

// rankedAgrees mirrors testbench.Agrees over ranked candidates.
func rankedAgrees(a, b *Candidate) bool {
	ae, be := a.rankErr(), b.rankErr()
	if ae != nil || be != nil {
		return ae != nil && be != nil && ae.Error() == be.Error()
	}
	if a.rankCases() != b.rankCases() {
		return false
	}
	for i := 0; i < a.rankCases(); i++ {
		if a.rankCaseFP(i) != b.rankCaseFP(i) {
			return false
		}
	}
	return true
}

// repTrace returns a candidate's full printed ranking trace, lazily
// re-simulating it on the fingerprint path. Prompt construction is the only
// consumer of trace strings left, and it only ever looks at the ≤TopClusters
// representatives — so those are the only candidates that ever pay for a
// printed trace. Simulation is deterministic, so the materialized trace is
// byte-identical to the one the legacy path retained.
func (p *Pipeline) repTrace(res *Result, idx int) *testbench.Trace {
	c := &res.Candidates[idx]
	if c.Trace == nil {
		c.Trace = testbench.RunBackend(c.Source, eval.TopModule, res.rankingStimulus, p.cfg.Backend)
		res.Stats.SimRuns++
	}
	return c.Trace
}

// refineInter resolves the divergence between the top two clusters. For
// simple-description tasks with small outputs the model judges the expected
// output on the first disagreeing test case and its vote can overturn the
// majority; otherwise it falls back to focused cross-cluster refinement.
func (p *Pipeline) refineInter(ctx context.Context, res *Result) error {
	c0, c1 := &res.Clusters[0], &res.Clusters[1]
	rep0 := &res.Candidates[c0.Members[0]]
	rep1 := &res.Candidates[c1.Members[0]]
	caseIdx := -1
	for i := 0; i < rep0.rankCases(); i++ {
		if !rankedCaseAgrees(rep0, rep1, i) {
			caseIdx = i
			break
		}
	}
	if caseIdx < 0 {
		return nil // identical traces should have been one cluster
	}

	outBits := 0
	for _, o := range res.Task.Ifc.Outputs {
		outBits += o.Width
	}
	if res.Task.SimpleDesc && outBits <= 8 {
		st := res.rankingStimulus
		resp, err := p.judgeWithTransientRetry(ctx, llm.JudgeRequest{
			TaskID: res.Task.ID,
			Spec:   res.Task.Spec,
			Case:   st.Cases[caseIdx],
		})
		if err != nil {
			if errors.Is(err, ErrLLM) {
				return nil
			}
			return err
		}
		res.Stats.JudgeCalls++
		res.JudgeVoted = true
		pred := resp.Predicted.Fingerprint()
		match0 := rep0.rankCaseFP(caseIdx) == pred
		match1 := rep1.rankCaseFP(caseIdx) == pred
		// A judge vote for the runner-up overturns the majority when the
		// clusters are close; a vote for the leader reinforces it.
		if match1 && !match0 && float64(c1.Score) >= 0.5*float64(c0.Score) {
			res.Clusters[0], res.Clusters[1] = res.Clusters[1], res.Clusters[0]
		}
		return nil
	}

	// Fallback: focused refinement across the two clusters. Only here do
	// printed traces exist at all on the streaming path (the prompt quotes
	// the disagreeing outputs), and only for the two representatives.
	t0 := p.repTrace(res, c0.Members[0])
	t1 := p.repTrace(res, c1.Members[0])
	hint := divergenceHint(res.Task, t0, t1, caseIdx)
	rng := p.rngFor(res.Task.ID, "inter")
	a := c0.Members[rng.Intn(len(c0.Members))]
	b := c1.Members[rng.Intn(len(c1.Members))]
	resp, err := p.refineWithTransientRetry(ctx, llm.RefineRequest{
		TaskID:      res.Task.ID,
		Spec:        res.Task.Spec,
		CandidateA:  res.Candidates[a].Code,
		CandidateB:  res.Candidates[b].Code,
		FocusHint:   hint,
		SampleIndex: 100,
	})
	if err != nil {
		if errors.Is(err, ErrLLM) {
			return nil
		}
		return err
	}
	res.Stats.RefineCalls++
	p.admitRefinedInter(res, resp.Code)
	return nil
}

// divergenceHint renders the concrete disagreement for the focused prompt.
func divergenceHint(task eval.Task, t0, t1 *testbench.Trace, caseIdx int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "On test case %d the top candidate groups disagree.\n", caseIdx)
	if caseIdx < len(t0.Cases) && caseIdx < len(t1.Cases) {
		fmt.Fprintf(&b, "Group A prints:\n")
		writeCase(&b, task, &t0.Cases[caseIdx])
		fmt.Fprintf(&b, "Group B prints:\n")
		writeCase(&b, task, &t1.Cases[caseIdx])
	}
	b.WriteString("Reason carefully about which behavior the specification requires.")
	return b.String()
}

func writeCase(b *strings.Builder, task eval.Task, ct *testbench.CaseTrace) {
	for si, s := range ct.Steps {
		fmt.Fprintf(b, "  step %d:", si)
		for oi, o := range s.Outputs {
			name := "?"
			if oi < len(task.Ifc.Outputs) {
				name = task.Ifc.Outputs[oi].Name
			}
			fmt.Fprintf(b, " %s=%s", name, o)
		}
		b.WriteByte('\n')
	}
}

// simulateRefined runs a refined candidate under the ranking stimulus on
// the configured representation (fingerprints by default, full trace on the
// legacy path) and returns it ready for agreement checks.
func (p *Pipeline) simulateRefined(res *Result, code string, src *ast.Source) Candidate {
	cand := Candidate{Code: code, Source: src, Valid: true, NormLen: -1, Refined: true}
	st := res.rankingStimulus
	if p.cfg.LegacyTraces {
		cand.Trace = testbench.RunBackend(src, eval.TopModule, st, p.cfg.Backend)
	} else {
		cand.FPTrace = testbench.RunFingerprint(src, eval.TopModule, st, p.cfg.Backend)
	}
	res.Stats.SimRuns++
	return cand
}

// admitRefined validates and simulates a refined candidate for cluster ci.
// Intra-cluster refinement exists to repair behavior the imperfect ranking
// testbench does NOT cover, so a trustworthy refined candidate must agree
// with its source cluster on every covered test case: any covered-case
// divergence means the model wandered off and the candidate is rejected.
func (p *Pipeline) admitRefined(res *Result, ci int, code string) {
	src, ok := validate(code)
	if !ok {
		return
	}
	cand := p.simulateRefined(res, code, src)
	if cand.rankErr() != nil {
		return
	}
	ref := &res.Candidates[res.Clusters[ci].Members[0]]
	for i := range res.rankingStimulus.Cases {
		if !rankedCaseAgrees(&cand, ref, i) {
			return // covered-case divergence: distrust the rewrite
		}
	}
	idx := len(res.Candidates)
	cand.Index = idx
	res.Candidates = append(res.Candidates, cand)
	res.Clusters[ci].RefinedIdx = append(res.Clusters[ci].RefinedIdx, idx)
}

// admitRefinedInter handles the cross-cluster refined candidate: it joins
// whichever top cluster it agrees with and boosts that cluster's score by
// one (it is one more independent, focused opinion).
func (p *Pipeline) admitRefinedInter(res *Result, code string) {
	src, ok := validate(code)
	if !ok {
		return
	}
	cand := p.simulateRefined(res, code, src)
	if cand.rankErr() != nil {
		return
	}
	idx := len(res.Candidates)
	added := false
	k := p.cfg.TopClusters
	if k > len(res.Clusters) {
		k = len(res.Clusters)
	}
	for ci := 0; ci < k; ci++ {
		ref := &res.Candidates[res.Clusters[ci].Members[0]]
		if rankedAgrees(&cand, ref) {
			res.Clusters[ci].Score++
			res.Clusters[ci].RefinedIdx = append(res.Clusters[ci].RefinedIdx, idx)
			added = true
			break
		}
	}
	if !added {
		return // agrees with neither top cluster: discard
	}
	cand.Index = idx
	res.Candidates = append(res.Candidates, cand)
	// Re-sort in case the boost changed the order.
	sort.SliceStable(res.Clusters, func(a, b int) bool {
		return res.Clusters[a].Score > res.Clusters[b].Score
	})
}

// pickFinal selects the output: the top cluster's refined candidate when one
// was admitted, otherwise a random member of the top cluster, otherwise any
// valid candidate, otherwise the raw first sample.
func (p *Pipeline) pickFinal(res *Result) {
	if len(res.Clusters) > 0 {
		top := res.Clusters[0]
		if len(top.RefinedIdx) > 0 {
			idx := top.RefinedIdx[len(top.RefinedIdx)-1]
			res.Final = res.Candidates[idx].Code
			res.FinalIndex = idx
			res.RefinedUsed = true
			return
		}
		rng := p.rngFor(res.Task.ID, "pick")
		idx := top.Members[rng.Intn(len(top.Members))]
		res.Final = res.Candidates[idx].Code
		res.FinalIndex = idx
		return
	}
	for i := range res.Candidates {
		if res.Candidates[i].Valid {
			res.Final = res.Candidates[i].Code
			res.FinalIndex = i
			return
		}
	}
	if len(res.Candidates) > 0 {
		res.Final = res.Candidates[0].Code
		res.FinalIndex = 0
	}
}

// refineWithTransientRetry mirrors generateWithTransientRetry for Refine.
func (p *Pipeline) refineWithTransientRetry(ctx context.Context, req llm.RefineRequest) (llm.Response, error) {
	transientRetries := p.cfg.LLMRetries
	var lastErr error
	for t := 0; t < transientRetries; t++ {
		resp, err := p.client.Refine(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, llm.ErrTransient) {
			return llm.Response{}, fmt.Errorf("%w: %v", ErrLLM, err)
		}
		req.SampleIndex += 1000 // draw fresh randomness on retry
		p.sleep(p.cfg.RetryBaseDelay * time.Duration(t+1))
	}
	return llm.Response{}, fmt.Errorf("%w: %v", ErrLLM, lastErr)
}

// judgeWithTransientRetry mirrors generateWithTransientRetry for JudgeOutput.
func (p *Pipeline) judgeWithTransientRetry(ctx context.Context, req llm.JudgeRequest) (llm.JudgeResponse, error) {
	transientRetries := p.cfg.LLMRetries
	var lastErr error
	for t := 0; t < transientRetries; t++ {
		resp, err := p.client.JudgeOutput(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, llm.ErrTransient) {
			return llm.JudgeResponse{}, fmt.Errorf("%w: %v", ErrLLM, err)
		}
		req.SampleIndex += 1000
		p.sleep(p.cfg.RetryBaseDelay * time.Duration(t+1))
	}
	return llm.JudgeResponse{}, fmt.Errorf("%w: %v", ErrLLM, lastErr)
}
