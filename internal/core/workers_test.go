package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
)

// runWithWorkers runs one VFocus pipeline on one task with the given
// ranking-pool size and returns the full result.
func runWithWorkers(t *testing.T, task eval.Task, workers int) *Result {
	t.Helper()
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		t.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantVFocus, profile.Name)
	cfg.Samples = 20
	cfg.RetryBaseDelay = 0
	cfg.Workers = workers
	res, err := New(client, cfg).Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRankWorkersDeterministic is the acceptance gate for the parallel
// ranking stage: the entire pipeline result — clustering, scores, refined
// candidates, the final pick — must be bit-identical whether the
// simulate-and-fingerprint loop runs sequentially or on a full worker pool.
func TestRankWorkersDeterministic(t *testing.T) {
	tasks := eval.Suite()
	for _, idx := range []int{10, 60, 120} {
		task := tasks[idx]
		ref := runWithWorkers(t, task, 1)
		for _, workers := range []int{4, 16} {
			got := runWithWorkers(t, task, workers)
			if got.Final != ref.Final || got.FinalIndex != ref.FinalIndex {
				t.Fatalf("task %s: final pick diverges with Workers=%d", task.ID, workers)
			}
			if !reflect.DeepEqual(got.Clusters, ref.Clusters) {
				t.Fatalf("task %s: clusters diverge with Workers=%d\nref: %+v\ngot: %+v",
					task.ID, workers, ref.Clusters, got.Clusters)
			}
			if got.Stats != ref.Stats {
				t.Fatalf("task %s: stats diverge with Workers=%d: %+v vs %+v",
					task.ID, workers, ref.Stats, got.Stats)
			}
		}
	}
}

// TestRankWorkersSharedDesignRace exercises the concurrency contract under
// the race detector: several pipelines with Workers > 1 rank the same task
// concurrently, so many goroutines drive pooled engines of the same cached
// compiled Design (duplicate candidates guarantee cache hits).
func TestRankWorkersSharedDesignRace(t *testing.T) {
	task := eval.Suite()[30]
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(VariantVFocus, profile.Name)
		cfg.Samples = 20
		cfg.RetryBaseDelay = 0
		cfg.Workers = 8
		pipe := New(client, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pipe.Run(context.Background(), task)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if results[i].Final != results[0].Final {
			t.Fatalf("concurrent run %d picked a different final", i)
		}
	}
}
