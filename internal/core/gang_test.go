package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
)

// runWithGang runs one VFocus pipeline on one task with the given gang size,
// worker count and testbench seed, and returns the full result. legacy
// selects the retained printed-trace path, which bypasses both the gang and
// the fingerprint memo — the independent referee.
func runWithGang(t *testing.T, task eval.Task, gangSize, workers int, tbSeed int64, legacy bool, perLane bool) *Result {
	t.Helper()
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		t.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantVFocus, profile.Name)
	cfg.Samples = 20
	cfg.RetryBaseDelay = 0
	cfg.GangSize = gangSize
	cfg.Workers = workers
	cfg.TBSeed = tbSeed
	cfg.LegacyTraces = legacy
	cfg.PerLaneGang = perLane
	res, err := New(client, cfg).Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRankGangMatchesLegacyReferee is the acceptance gate for gang-batched
// ranking, in both gang execution models. For each (gang size, mode) a fresh
// testbench seed makes the gang run the first to ever simulate those
// (design, stimulus) pairs — so the gang genuinely drives its lanes rather
// than reading the fingerprint memo — and the retained printed-trace path
// (no gang, no memo) referees every pipeline decision.
func TestRankGangMatchesLegacyReferee(t *testing.T) {
	tasks := eval.Suite()
	for _, idx := range []int{10, 60, 120} {
		task := tasks[idx]
		for _, perLane := range []bool{false, true} {
			for _, gangSize := range []int{2, DefaultGangSize, 64} {
				seed := int64(7000 + 10*idx + gangSize)
				if perLane {
					seed += 500000 // fresh stimuli: the SoA rows already warmed these seeds' memos
				}
				gang := runWithGang(t, task, gangSize, 4, seed, false, perLane)
				legacy := runWithGang(t, task, 1, 1, seed, true, perLane)
				assertSameDecisions(t, task.ID, legacy, gang)
			}
		}
	}
}

// TestRankGangSizeDeterministic crosses gang sizes with worker counts on one
// shared stimulus: every combination must produce a bit-identical result
// (the memo may satisfy repeat runs, but batch partitioning, worker pickup
// and result assembly all still run per configuration).
func TestRankGangSizeDeterministic(t *testing.T) {
	task := eval.Suite()[30]
	ref := runWithGang(t, task, 1, 1, 8117, false, false)
	for _, gangSize := range []int{2, DefaultGangSize, 64} {
		for _, workers := range []int{1, 4} {
			got := runWithGang(t, task, gangSize, workers, 8117, false, false)
			if got.Final != ref.Final || got.FinalIndex != ref.FinalIndex {
				t.Fatalf("final pick diverges with GangSize=%d Workers=%d", gangSize, workers)
			}
			if !reflect.DeepEqual(got.Clusters, ref.Clusters) {
				t.Fatalf("clusters diverge with GangSize=%d Workers=%d", gangSize, workers)
			}
			if got.Stats != ref.Stats {
				t.Fatalf("stats diverge with GangSize=%d Workers=%d: %+v vs %+v",
					gangSize, workers, ref.Stats, got.Stats)
			}
		}
	}
}
