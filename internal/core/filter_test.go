package core

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
)

// TestDensityFilterBacksOffOnTinyPools: with a 6-sample budget the filter
// must not prune the pool below the ranking minimum — pre-ranking should
// contribute only through validity retry at that scale.
func TestDensityFilterBacksOffOnTinyPools(t *testing.T) {
	task := pickTask(t, "seq_cnt_03_updown")
	pipe := newPipeline(t, VariantPreVRank, "qwq-32b", []eval.Task{task}, 6)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	filtered := 0
	valid := 0
	for _, c := range res.Candidates {
		if c.Valid {
			valid++
		}
		if c.Filtered {
			filtered++
		}
	}
	kept := valid - filtered
	if kept < valid && kept < minFilteredPool {
		t.Errorf("filter left %d of %d valid candidates (< floor %d) without backing off",
			kept, valid, minFilteredPool)
	}
}

// TestDensityFilterActiveOnLargePools: at n=50 the filter must actually
// remove something for a model with both bounds enabled.
func TestDensityFilterActiveOnLargePools(t *testing.T) {
	task := pickTask(t, "seq_fsm_05")
	pipe := newPipeline(t, VariantPreVRank, "qwq-32b", []eval.Task{task}, 50)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	filtered := 0
	for _, c := range res.Candidates {
		if c.Filtered {
			filtered++
		}
	}
	if filtered == 0 {
		t.Error("filter removed nothing from a 50-sample pool")
	}
}

// TestVFocusNotWorseThanVRankSmallN guards the Fig. 4 small-n regression:
// over a task subset at n=6, Pre+VRank must not trail VRank by more than
// noise.
func TestVFocusNotWorseThanVRankSmallN(t *testing.T) {
	all := eval.Suite()
	var tasks []eval.Task
	for i := 0; i < len(all); i += 7 {
		tasks = append(tasks, all[i])
	}
	profile, err := llm.ProfileByName("deepseek-r1")
	if err != nil {
		t.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 23, tasks)
	if err != nil {
		t.Fatal(err)
	}
	run := func(v Variant) map[string]string {
		out := make(map[string]string, len(tasks))
		cfg := DefaultConfig(v, profile.Name)
		cfg.Samples = 6
		cfg.RetryBaseDelay = 0
		pipe := New(client, cfg)
		for _, task := range tasks {
			res, rerr := pipe.Run(context.Background(), task)
			if rerr != nil {
				t.Fatal(rerr)
			}
			out[task.ID] = res.Final
		}
		return out
	}
	vrank := run(VariantVRank)
	pre := run(VariantPreVRank)
	// With the filter backed off, the two variants may differ only through
	// validity retry; count how many picks changed.
	diffs := 0
	for id := range vrank {
		if vrank[id] != pre[id] {
			diffs++
		}
	}
	if diffs > len(tasks)/2 {
		t.Errorf("small-n Pre+VRank diverges from VRank on %d/%d tasks; filter guard not effective",
			diffs, len(tasks))
	}
}
