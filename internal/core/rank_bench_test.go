package core

import (
	"context"
	"os"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/resultstore"
	"repro/internal/testbench"
)

// benchRankStage isolates stage 2: candidates are generated once outside the
// timed loop, and each iteration re-runs only simulate-and-cluster on a
// fresh copy of the pool. This is the stage the streaming fingerprint path
// targets; the legacy sub-benchmark measures the retained string-trace path
// on identical candidates.
func benchRankStage(b *testing.B, legacy bool, workers int) {
	b.Helper()
	task := eval.Suite()[120] // sequential golden: multi-case, multi-step traces
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		b.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(VariantVRank, profile.Name)
	cfg.Samples = 30
	cfg.RetryBaseDelay = 0
	cfg.LegacyTraces = legacy
	cfg.Workers = workers
	pipe := New(client, cfg)

	cands := make([]Candidate, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		c, err := pipe.generateOne(context.Background(), task, i)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, c)
	}

	// Warm the shared compile cache and engine pools so sub-benchmarks
	// measure steady state rather than who ran first.
	{
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		if err := pipe.rank(context.Background(), &Result{Task: task, FinalIndex: -1, Candidates: pool}); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		res := &Result{Task: task, FinalIndex: -1, Candidates: pool}
		if err := pipe.rank(context.Background(), res); err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			b.Fatal("ranking produced no clusters")
		}
	}
}

// benchRankStageCold measures real simulation speed rather than memo hits:
// every iteration ranks the same candidate pool under a never-before-seen
// testbench seed, so the fingerprint memo, the stimulus schedule, and the
// binding cache all miss and every gang lane genuinely simulates. Compile
// caches stay warm (the candidates never change), so the difference between
// the gang execution models is pure lane execution.
func benchRankStageCold(b *testing.B, perLane bool) {
	b.Helper()
	task := eval.Suite()[120]
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		b.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(VariantVRank, profile.Name)
	cfg.Samples = 30
	cfg.RetryBaseDelay = 0
	cfg.Workers = 1
	cfg.GangSize = DefaultGangSize
	cfg.PerLaneGang = perLane
	pipe := New(client, cfg)

	cands := make([]Candidate, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		c, err := pipe.generateOne(context.Background(), task, i)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, c)
	}

	// Warm the compile cache and engine pools; the timed loop never reuses
	// this seed, so nothing downstream of compilation stays warm.
	{
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		if err := pipe.rank(context.Background(), &Result{Task: task, FinalIndex: -1, Candidates: pool}); err != nil {
			b.Fatal(err)
		}
	}

	// A seed base far from every other test and benchmark in the package, so
	// the per-iteration stimuli are truly first-run.
	seedBase := int64(40_000_000)
	if perLane {
		seedBase = 50_000_000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.cfg.TBSeed = seedBase + int64(i)
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		res := &Result{Task: task, FinalIndex: -1, Candidates: pool}
		if err := pipe.rank(context.Background(), res); err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			b.Fatal("ranking produced no clusters")
		}
	}
}

// benchRankStageDiskWarm measures the warm-restart Table I rank: a fresh
// process (memo starts empty) pointed at a disk store directory populated by
// a previous process. Every fingerprint the process ever needs comes off
// disk on first touch and out of the in-process memo on repeats — the
// process performs zero simulations, which VFOCUS_BENCH_EXPECT_WARM turns
// into a hard assertion covering the whole bench, warm-up pass included.
// Contrast with /cold, which defeats every memo per iteration and pays full
// simulation; the in-process repeats here are the point, not an artifact: a
// restarted daemon re-ranking a job IS memo-warm after its first store read.
//
// Env knobs, driven by scripts/bench_pr9.sh:
//
//	VFOCUS_BENCH_STORE_DIR    store root shared across processes
//	                          (default: a throwaway b.TempDir(), i.e. cold)
//	VFOCUS_BENCH_EXPECT_WARM  "1" fails the bench if anything simulated
func benchRankStageDiskWarm(b *testing.B) {
	b.Helper()
	dir := os.Getenv("VFOCUS_BENCH_STORE_DIR")
	if dir == "" {
		dir = b.TempDir()
	}
	store, err := resultstore.NewDisk(dir)
	if err != nil {
		b.Fatal(err)
	}
	prev := testbench.SetStore(store)
	defer testbench.SetStore(prev)
	before := testbench.ReadStoreStats()

	task := eval.Suite()[120]
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		b.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(VariantVRank, profile.Name)
	cfg.Samples = 30
	cfg.RetryBaseDelay = 0
	cfg.Workers = 1
	cfg.GangSize = DefaultGangSize
	pipe := New(client, cfg)

	cands := make([]Candidate, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		c, err := pipe.generateOne(context.Background(), task, i)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, c)
	}

	// Warm-up pass: compile cache, engine pools, and — in a populated run —
	// the first-touch store reads that stand in for simulation.
	{
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		if err := pipe.rank(context.Background(), &Result{Task: task, FinalIndex: -1, Candidates: pool}); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		res := &Result{Task: task, FinalIndex: -1, Candidates: pool}
		if err := pipe.rank(context.Background(), res); err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			b.Fatal("ranking produced no clusters")
		}
	}
	b.StopTimer()
	after := testbench.ReadStoreStats()
	if os.Getenv("VFOCUS_BENCH_EXPECT_WARM") == "1" && after.Sims != before.Sims {
		b.Fatalf("expected a fully warm store run, but %d fingerprints simulated (hits=%d misses=%d)",
			after.Sims-before.Sims, after.Hits-before.Hits, after.Misses-before.Misses)
	}
}

// BenchmarkRankStage measures the ranking stage on the default streaming
// fingerprint path and on the legacy retained-trace path, sequentially and
// on a worker pool. The cold rows bypass every post-compile memo so they
// compare the two gang execution models on honest simulation work.
func BenchmarkRankStage(b *testing.B) {
	b.Run("fingerprint", func(b *testing.B) { benchRankStage(b, false, 1) })
	b.Run("legacy", func(b *testing.B) { benchRankStage(b, true, 1) })
	b.Run("fingerprint-workers", func(b *testing.B) { benchRankStage(b, false, DefaultWorkers()) })
	b.Run("cold", func(b *testing.B) { benchRankStageCold(b, false) })
	b.Run("cold-perlane", func(b *testing.B) { benchRankStageCold(b, true) })
	b.Run("disk-warm", func(b *testing.B) { benchRankStageDiskWarm(b) })
}
