package core

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
)

// benchRankStage isolates stage 2: candidates are generated once outside the
// timed loop, and each iteration re-runs only simulate-and-cluster on a
// fresh copy of the pool. This is the stage the streaming fingerprint path
// targets; the legacy sub-benchmark measures the retained string-trace path
// on identical candidates.
func benchRankStage(b *testing.B, legacy bool, workers int) {
	b.Helper()
	task := eval.Suite()[120] // sequential golden: multi-case, multi-step traces
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		b.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 11, []eval.Task{task})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(VariantVRank, profile.Name)
	cfg.Samples = 30
	cfg.RetryBaseDelay = 0
	cfg.LegacyTraces = legacy
	cfg.Workers = workers
	pipe := New(client, cfg)

	cands := make([]Candidate, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		c, err := pipe.generateOne(context.Background(), task, i)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, c)
	}

	// Warm the shared compile cache and engine pools so sub-benchmarks
	// measure steady state rather than who ran first.
	{
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		if err := pipe.rank(&Result{Task: task, FinalIndex: -1, Candidates: pool}); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := make([]Candidate, len(cands))
		copy(pool, cands)
		res := &Result{Task: task, FinalIndex: -1, Candidates: pool}
		if err := pipe.rank(res); err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			b.Fatal("ranking produced no clusters")
		}
	}
}

// BenchmarkRankStage measures the ranking stage on the default streaming
// fingerprint path and on the legacy retained-trace path, sequentially and
// on a worker pool.
func BenchmarkRankStage(b *testing.B) {
	b.Run("fingerprint", func(b *testing.B) { benchRankStage(b, false, 1) })
	b.Run("legacy", func(b *testing.B) { benchRankStage(b, true, 1) })
	b.Run("fingerprint-workers", func(b *testing.B) { benchRankStage(b, false, DefaultWorkers()) })
}
