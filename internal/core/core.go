// Package core implements VFocus, the paper's three-stage framework for
// LLM Verilog generation:
//
//  1. Pre-ranking sampling and filtering — sample n candidates with retry on
//     syntactically invalid output (up to 5 attempts with growing delay) and
//     apply Density-guided Filtering on reasoning-trace lengths to keep
//     candidates inside the per-model "reasoning sweet spot".
//  2. Ranking — simulate every candidate under an automatically generated
//     printing testbench, cluster candidates by strict behavioral agreement
//     over all test cases, and score R(c) = n - Σ ℓ_strict(c, c')
//     (equivalently, cluster size).
//  3. Post-ranking refinement — mine inconsistencies: intra-cluster (two
//     samples of a top cluster + spec → reasoning-augmented rewrite) and
//     inter-cluster (locate the test case where top clusters disagree; for
//     simple-description tasks let the model judge the expected output and
//     vote, otherwise fall back to focused refinement). Early-exit skips
//     inter-cluster work when one cluster holds ≥90% of candidates.
//
// The same pipeline type also exposes the paper's comparison points as
// configurations: Baseline (random pick), VRank (ranking only), and
// Pre+VRank (pre-ranking + ranking).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/sem"
)

// Sentinel errors.
var (
	// ErrNoCandidates means sampling yielded nothing usable.
	ErrNoCandidates = errors.New("no usable candidates")
	// ErrLLM wraps persistent model failures.
	ErrLLM = errors.New("llm call failed")
)

// Variant selects which framework from the paper's Table I to run.
type Variant int

// Pipeline variants.
const (
	// VariantBaseline picks a random candidate (the paper's random-pick
	// baseline; pass@k is computed over the raw sample pool).
	VariantBaseline Variant = iota + 1
	// VariantVRank is self-consistency ranking only (the VRank row).
	VariantVRank
	// VariantPreVRank adds pre-ranking retry + density filtering before
	// ranking (the Pre+VRank row).
	VariantPreVRank
	// VariantVFocus is the full framework including post-ranking
	// refinement.
	VariantVFocus
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case VariantBaseline:
		return "Baseline"
	case VariantVRank:
		return "VRank"
	case VariantPreVRank:
		return "Pre+VRank"
	case VariantVFocus:
		return "VFocus"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config controls a pipeline run.
type Config struct {
	// Variant selects the framework.
	Variant Variant
	// Samples is n, the number of candidates (the paper uses 50).
	Samples int
	// MaxRetries bounds syntax retries per sample (the paper uses 5).
	MaxRetries int
	// RetryBaseDelay is the first retry delay; it grows linearly with the
	// attempt number. The Sleeper hook makes it testable.
	RetryBaseDelay time.Duration
	// LminPct and LmaxPct are the density-filter percentile bounds on
	// reasoning length. The paper sets Lmax at the 75th percentile for all
	// models and Lmin at the 10th percentile for qwq/o3-mini-high and 0
	// for deepseek-r1.
	LminPct float64
	LmaxPct float64
	// EarlyExitFrac is the dominant-cluster fraction that triggers the
	// early exit (0.90 in the paper).
	EarlyExitFrac float64
	// TopClusters is how many top-ranked clusters refinement considers.
	TopClusters int
	// TBSeed seeds ranking-testbench generation.
	TBSeed int64
	// TBImperfection models weak LLM-generated testbenches (fraction of
	// dropped cases).
	TBImperfection float64
	// SelectSeed seeds representative picks.
	SelectSeed int64
	// Sleeper, when non-nil, replaces time.Sleep during retry backoff.
	Sleeper func(time.Duration)
	// Backend selects the simulation engine for ranking and refinement
	// runs. The zero value is the compiled backend; the interpreter stays
	// available for differential testing.
	Backend testbench.Backend
	// Workers bounds the concurrency of the ranking stage's
	// simulate-and-fingerprint loop. Results are bit-identical for any
	// value. Zero or one runs sequentially; set DefaultWorkers() to use
	// every core (the experiment drivers already parallelize across tasks,
	// so they keep per-pipeline ranking sequential).
	Workers int
	// GangSize is how many candidates a ranking worker simulates in
	// lockstep per pickup (testbench.RunFingerprintGang): each gang decodes
	// the shared stimulus schedule once for all its lanes. Results are
	// bit-identical for any value. Zero selects DefaultGangSize; 1 degrades
	// to solo runs. Ignored on the legacy-trace path.
	GangSize int
	// PerLaneGang forces ranking gangs onto the per-lane engine model
	// (testbench.GangPerLane): every lane owns a private engine instead of
	// sharing the gang's struct-of-arrays planes. The default (false) runs
	// the SoA model. Both produce bit-identical results; the per-lane model
	// is kept as an escape hatch and differential referee.
	PerLaneGang bool
	// LegacyTraces forces the ranking stage onto the retained string-trace
	// path: every candidate keeps a full printed Trace and clustering
	// re-derives fingerprints from it. The default (false) streams
	// per-case fingerprints during simulation and never materializes trace
	// strings except for the few representatives refinement actually
	// inspects. Both paths produce bit-identical results; the legacy path
	// is kept as the differential referee.
	LegacyTraces bool
	// FPMemoCap sizes the in-process fingerprint memo — the memory tier of
	// the result store (testbench.SetFPMemoCap). Zero keeps the current
	// process-wide capacity (default 4096). The memo is process-wide state
	// shared by every pipeline, so New applies a non-zero value globally.
	FPMemoCap int
	// LLMRetries bounds the pipeline-level transient-retry loops around
	// Generate/Refine/JudgeOutput. Zero selects the default (4). The value
	// also strides the Attempt field of generate requests, so changing it
	// changes the deterministic request stream — keep the default for
	// reproducing published numbers.
	LLMRetries int
}

// DefaultWorkers is the worker-pool size used when a config leaves Workers
// unset: one worker per available CPU. It is the single source of the
// default shared by the experiment drivers (Table I, Fig. 3, Fig. 4) and
// the CLI.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// DefaultGangSize is the ranking gang width used when a config leaves
// GangSize unset. Eight lanes amortize the schedule decode well while a
// typical ranked pool (tens of unique candidates) still splits into enough
// gangs to keep a multi-worker pool busy.
const DefaultGangSize = 8

// DefaultConfig returns the paper's settings for a variant and model.
func DefaultConfig(v Variant, model string) Config {
	cfg := Config{
		Variant:        v,
		Samples:        50,
		MaxRetries:     5,
		RetryBaseDelay: time.Millisecond, // simulated backend: keep fast
		LminPct:        0.10,
		LmaxPct:        0.75,
		EarlyExitFrac:  0.90,
		TopClusters:    2,
		TBSeed:         1,
		TBImperfection: 0.30,
		SelectSeed:     1,
	}
	if model == "deepseek-r1" {
		cfg.LminPct = 0 // Fig. 3a: no short-length penalty for deepseek
	}
	return cfg
}

// Candidate is one sampled implementation with its bookkeeping.
type Candidate struct {
	// Index is the sample position (0..n-1).
	Index int
	// Code is the model's Verilog output.
	Code string
	// Source is the parsed code (nil when invalid).
	Source *ast.Source
	// ReasoningTokens is the reasoning-trace length (0 when missing).
	ReasoningTokens int
	// Valid reports syntax + semantic validity.
	Valid bool
	// Retries is how many extra generation attempts were needed.
	Retries int
	// NormLen is the per-task min-max normalized reasoning length
	// (filled by the density filter; -1 when unavailable).
	NormLen float64
	// Filtered marks candidates removed by Density-guided Filtering.
	Filtered bool
	// Trace is the full printed ranking-testbench trace. On the default
	// fingerprint path it stays nil unless refinement lazily materialized
	// it for a cluster representative; with Config.LegacyTraces every
	// ranked candidate carries one.
	Trace *testbench.Trace
	// FPTrace is the streaming fingerprint record of the ranking run (nil
	// when invalid, filtered, or on the legacy path).
	FPTrace *testbench.FPTrace
	// Refined marks candidates produced by post-ranking refinement.
	Refined bool
}

// SimOK reports whether the candidate's ranking simulation ran to
// completion, on whichever representation the configured path produced.
func (c *Candidate) SimOK() bool {
	if c.FPTrace != nil {
		return c.FPTrace.Err == nil
	}
	return c.Trace != nil && c.Trace.Err == nil
}

// Cluster is a strict-agreement behavioral cluster.
type Cluster struct {
	// Members indexes into Result.Candidates.
	Members []int
	// Fingerprint is the shared trace fingerprint.
	Fingerprint uint64
	// Score is the paper's R(c): the cluster size among ranked candidates
	// (plus any inter-cluster refinement boost).
	Score int
	// RefinedIdx indexes refined candidates admitted to this cluster.
	RefinedIdx []int
}

// Result reports one pipeline run on one task.
type Result struct {
	Task eval.Task
	// Final is the selected implementation ("" when nothing usable).
	Final string
	// FinalIndex is the candidate index backing Final (-1 for refined
	// output not in the original pool).
	FinalIndex int
	// Candidates is the sampled pool (plus refined extras appended).
	Candidates []Candidate
	// Clusters are the ranked clusters, largest first.
	Clusters []Cluster
	// EarlyExit reports whether the ≥90% dominant-cluster exit fired.
	EarlyExit bool
	// JudgeVoted reports whether inter-cluster output judging ran.
	JudgeVoted bool
	// RefinedUsed reports whether the final code came from refinement.
	RefinedUsed bool
	// Stats counts model calls.
	Stats CallStats

	// rankingStimulus is retained for the refinement stage.
	rankingStimulus *testbench.Stimulus
}

// CallStats counts LLM and simulation work for cost reporting.
type CallStats struct {
	GenerateCalls int
	RefineCalls   int
	JudgeCalls    int
	SimRuns       int
}

// Pipeline runs the VFocus framework against one model client.
type Pipeline struct {
	client llm.Client
	cfg    Config
}

// New builds a pipeline.
func New(client llm.Client, cfg Config) *Pipeline {
	if cfg.Samples <= 0 {
		cfg.Samples = 50
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.TopClusters <= 0 {
		cfg.TopClusters = 2
	}
	if cfg.EarlyExitFrac <= 0 {
		cfg.EarlyExitFrac = 0.90
	}
	if cfg.LLMRetries <= 0 {
		cfg.LLMRetries = 4
	}
	if cfg.FPMemoCap > 0 {
		testbench.SetFPMemoCap(cfg.FPMemoCap)
	}
	return &Pipeline{client: client, cfg: cfg}
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// sleep delays with the injected sleeper (or not at all by default in
// simulation; a nil Sleeper with a zero RetryBaseDelay skips sleeping).
func (p *Pipeline) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.cfg.Sleeper != nil {
		p.cfg.Sleeper(d)
		return
	}
	time.Sleep(d)
}

// validateMemo caches parse + semantic-check results by candidate text. The
// same completion recurs across pipeline variants and runs (candidate
// generation is deterministic), and parsing is a measurable slice of a
// pipeline run. Parsed ASTs are treated as immutable everywhere downstream,
// so sharing them across candidates is safe — and makes the simulator's
// pointer-keyed canonical-hash memo more effective. Cleared wholesale at the
// cap so it stays bounded.
var (
	validateMu   sync.Mutex
	validateMemo = make(map[string]validated)
)

const validateMemoCap = 4096

type validated struct {
	src *ast.Source
	ok  bool
}

// ValidateCandidate parses and semantically checks candidate code through
// the process-wide validation memo, returning the shared AST and whether
// the candidate is eligible for ranking. It is the same gate the pipeline
// applies to generated samples, exported for callers (the daemon) that
// accept externally supplied candidate pools.
func ValidateCandidate(code string) (*ast.Source, bool) {
	return validate(code)
}

// validate parses and semantically checks candidate code.
func validate(code string) (*ast.Source, bool) {
	validateMu.Lock()
	if v, hit := validateMemo[code]; hit {
		validateMu.Unlock()
		return v.src, v.ok
	}
	validateMu.Unlock()
	v := validated{}
	// ParseCached shares one AST per distinct text with the oracle and the
	// simulated clients, which also concentrates the simulator's
	// pointer-keyed canonical-hash memo.
	if src, err := eval.ParseCached(code); err == nil &&
		src.FindModule(eval.TopModule) != nil && !sem.Check(src).HasErrors() {
		v = validated{src: src, ok: true}
	}
	validateMu.Lock()
	if len(validateMemo) >= validateMemoCap {
		validateMemo = make(map[string]validated, validateMemoCap)
	}
	validateMemo[code] = v
	validateMu.Unlock()
	return v.src, v.ok
}

// generateOne samples one candidate. Retry policy depends on the variant:
// VFocus-grade pipelines retry invalid output up to MaxRetries with growing
// delay; plain VRank/Baseline accept the first completion as-is (the paper
// notes VRank "lacks mechanisms to ... verify sample validity"). Transient
// API errors are always retried.
func (p *Pipeline) generateOne(ctx context.Context, task eval.Task, sampleIdx int) (Candidate, error) {
	retrySyntax := p.cfg.Variant == VariantPreVRank || p.cfg.Variant == VariantVFocus
	maxAttempts := 1
	if retrySyntax {
		maxAttempts = p.cfg.MaxRetries
	}
	cand := Candidate{Index: sampleIdx, NormLen: -1}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		resp, err := p.generateWithTransientRetry(ctx, task, sampleIdx, attempt)
		if err != nil {
			return cand, err
		}
		src, ok := validate(resp.Code)
		cand.Code = resp.Code
		cand.ReasoningTokens = resp.ReasoningTokens
		cand.Source = src
		cand.Valid = ok
		cand.Retries = attempt
		if ok || !retrySyntax {
			return cand, nil
		}
		p.sleep(p.cfg.RetryBaseDelay * time.Duration(attempt+1))
	}
	return cand, nil // still invalid after retries: keep, it will rank last
}

// generateWithTransientRetry retries ErrTransient failures with linear
// backoff, mirroring production API clients.
func (p *Pipeline) generateWithTransientRetry(ctx context.Context, task eval.Task, sampleIdx, attempt int) (llm.Response, error) {
	transientRetries := p.cfg.LLMRetries
	var lastErr error
	for t := 0; t < transientRetries; t++ {
		resp, err := p.client.Generate(ctx, llm.GenerateRequest{
			TaskID:      task.ID,
			Spec:        task.Spec,
			Guidelines:  Guidelines,
			SampleIndex: sampleIdx,
			Attempt:     attempt*transientRetries + t,
		})
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, llm.ErrTransient) {
			return llm.Response{}, fmt.Errorf("%w: %v", ErrLLM, err)
		}
		p.sleep(p.cfg.RetryBaseDelay * time.Duration(t+1))
	}
	return llm.Response{}, fmt.Errorf("%w: %v", ErrLLM, lastErr)
}

// Guidelines is the prompt-engineering preamble applied at the sampling
// stage (general tips plus typical LLM Verilog mistakes, following the
// paper's citations of VerilogCoder and MAGE).
const Guidelines = `You are an expert Verilog designer. Follow these rules:
- Declare every output driven from an always block as reg.
- Use non-blocking assignments (<=) in clocked always blocks and blocking (=) in combinational ones.
- Reset synchronously unless the spec says otherwise, and reset every state register.
- Cover all case values or provide a default arm to avoid unintended latches.
- Mind vector widths: size literals (e.g. 4'd1) and match port widths exactly.
- Do not introduce extra state; derive combinational outputs with assign where possible.`

// Run executes the configured variant on one task.
func (p *Pipeline) Run(ctx context.Context, task eval.Task) (*Result, error) {
	res := &Result{
		Task:       task,
		FinalIndex: -1,
		// Sized for the sample pool; refinement may append a few extras.
		Candidates: make([]Candidate, 0, p.cfg.Samples),
	}

	// Stage 1: sampling (+ validity retry for VFocus-grade variants).
	for i := 0; i < p.cfg.Samples; i++ {
		cand, err := p.generateOne(ctx, task, i)
		if err != nil {
			return nil, err
		}
		res.Stats.GenerateCalls += cand.Retries + 1
		res.Candidates = append(res.Candidates, cand)
	}

	if p.cfg.Variant == VariantBaseline {
		p.pickBaseline(res)
		return res, nil
	}

	// Stage 1b: Density-guided Filtering (Pre+VRank and VFocus).
	if p.cfg.Variant == VariantPreVRank || p.cfg.Variant == VariantVFocus {
		if err := p.densityFilter(ctx, res); err != nil {
			return nil, err
		}
	}

	// Stage 2: ranking by simulation consistency.
	if err := p.rank(ctx, res); err != nil {
		return nil, err
	}

	// Stage 3: post-ranking refinement (VFocus only).
	if p.cfg.Variant == VariantVFocus && len(res.Clusters) > 0 {
		if err := p.refine(ctx, res); err != nil {
			return nil, err
		}
	}

	p.pickFinal(res)
	return res, nil
}
