// Benchmark harness: one bench per paper artifact (Table I, Fig. 3, Fig. 4)
// plus the ablation benches DESIGN.md calls out and micro-benchmarks of the
// substrates. The artifact benches run reduced-size configurations so a
// plain `go test -bench=.` stays tractable; the cmd/vfocus-experiments
// binary regenerates the full-size artifacts.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/testbench"
	"repro/internal/verilog/parser"
)

// benchTasks returns every stride-th task, spanning all families.
func benchTasks(stride int) []eval.Task {
	all := eval.Suite()
	var out []eval.Task
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	return out
}

// --- Paper artifacts -----------------------------------------------------------

// benchTable1 regenerates a reduced Table I (one model, 1 run, n=20, every
// 6th task) per iteration on the given simulation backend. The compiled
// variant exercises the elaboration cache the way real experiments do:
// duplicate candidates recur across variants and runs.
func benchTable1(b *testing.B, backend testbench.Backend, legacyTraces bool) {
	b.Helper()
	cfg := exp.Table1Config{
		Models:       []string{"deepseek-r1"},
		Tasks:        benchTasks(6),
		Samples:      20,
		Runs:         1,
		Seed:         1,
		Backend:      backend,
		LegacyTraces: legacyTraces,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTable1(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Compiled is the paper-artifact bench on the default
// (compiled) backend and the default streaming fingerprint path, named for
// side-by-side comparison with the interpreter and legacy rows.
func BenchmarkTable1Compiled(b *testing.B) { benchTable1(b, testbench.BackendCompiled, false) }

// BenchmarkTable1CompiledLegacyTraces runs the same reduced Table I on the
// retained printed-trace path (PR 2 behavior), isolating what streaming
// fingerprints buy end to end.
func BenchmarkTable1CompiledLegacyTraces(b *testing.B) {
	benchTable1(b, testbench.BackendCompiled, true)
}

// BenchmarkTable1Interpreter runs the same reduced Table I on the original
// AST-walking engine.
func BenchmarkTable1Interpreter(b *testing.B) { benchTable1(b, testbench.BackendInterpreter, false) }

// benchFig3 regenerates a reduced Fig. 3 panel set per iteration.
func benchFig3(b *testing.B, backend testbench.Backend) {
	b.Helper()
	cfg := exp.Fig3Config{
		Models:  []string{"deepseek-r1", "o3-mini-medium"},
		Tasks:   benchTasks(6),
		Samples: 20,
		Bins:    10,
		Seed:    1,
		Backend: backend,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig3(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Compiled is the paper-artifact bench on the default
// (compiled) backend.
func BenchmarkFig3Compiled(b *testing.B) { benchFig3(b, testbench.BackendCompiled) }

// BenchmarkFig3Interpreter runs the same reduced Fig. 3 on the interpreter.
func BenchmarkFig3Interpreter(b *testing.B) { benchFig3(b, testbench.BackendInterpreter) }

// BenchmarkFig4 regenerates a reduced Fig. 4 sweep per iteration.
func BenchmarkFig4(b *testing.B) {
	cfg := exp.Fig4Config{
		Models:      []string{"deepseek-r1"},
		Tasks:       benchTasks(12),
		SampleSizes: []int{5, 20},
		Runs:        1,
		Seed:        1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig4(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) --------------------------

// ablationPassRate runs the pipeline over the task set and reports pass@1 as
// a benchmark metric, so `go test -bench=Ablation` prints the design-space
// numbers next to the timings.
func ablationPassRate(b *testing.B, tasks []eval.Task, mutate func(*core.Config)) {
	b.Helper()
	profile, err := llm.ProfileByName("qwq-32b") // weakest model: largest effects
	if err != nil {
		b.Fatal(err)
	}
	oracle := exp.NewOracle(tasks, 8)
	b.ReportAllocs()
	var lastRate float64
	for i := 0; i < b.N; i++ {
		client, cerr := llm.NewSimClient(profile, 17, tasks)
		if cerr != nil {
			b.Fatal(cerr)
		}
		cfg := core.DefaultConfig(core.VariantVFocus, profile.Name)
		cfg.Samples = 20
		cfg.RetryBaseDelay = 0
		mutate(&cfg)
		pipe := core.New(client, cfg)
		pass := 0
		for _, task := range tasks {
			res, rerr := pipe.Run(context.Background(), task)
			if rerr != nil {
				b.Fatal(rerr)
			}
			ok, verr := oracle.Verify(task.ID, res.Final)
			if verr != nil {
				b.Fatal(verr)
			}
			if ok {
				pass++
			}
		}
		lastRate = float64(pass) / float64(len(tasks))
	}
	b.ReportMetric(100*lastRate, "pass@1_%")
}

// BenchmarkAblationDensity sweeps the density-filter bounds, including
// disabling it (Lmin=0, Lmax=1).
func BenchmarkAblationDensity(b *testing.B) {
	tasks := benchTasks(8)
	for _, tc := range []struct {
		name       string
		lmin, lmax float64
	}{
		{"off", 0, 1},
		{"paper_10_75", 0.10, 0.75},
		{"tight_25_60", 0.25, 0.60},
		{"maxonly_0_75", 0, 0.75},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ablationPassRate(b, tasks, func(cfg *core.Config) {
				cfg.LminPct = tc.lmin
				cfg.LmaxPct = tc.lmax
			})
		})
	}
}

// BenchmarkAblationEarlyExit sweeps the dominant-cluster early-exit
// threshold.
func BenchmarkAblationEarlyExit(b *testing.B) {
	tasks := benchTasks(8)
	for _, frac := range []float64{0.5, 0.9, 1.01} {
		b.Run(fmt.Sprintf("frac_%v", frac), func(b *testing.B) {
			ablationPassRate(b, tasks, func(cfg *core.Config) {
				cfg.EarlyExitFrac = frac
			})
		})
	}
}

// BenchmarkAblationTBImperfection sweeps ranking-testbench quality: denser
// testbenches cluster better but model a stronger generator than the paper
// assumes.
func BenchmarkAblationTBImperfection(b *testing.B) {
	tasks := benchTasks(8)
	for _, imp := range []float64{0, 0.3, 0.6} {
		b.Run(fmt.Sprintf("drop_%v", imp), func(b *testing.B) {
			ablationPassRate(b, tasks, func(cfg *core.Config) {
				cfg.TBImperfection = imp
			})
		})
	}
}

// BenchmarkAblationRetry sweeps the syntax-retry limit (1 = no retry).
func BenchmarkAblationRetry(b *testing.B) {
	tasks := benchTasks(8)
	for _, retries := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("max_%d", retries), func(b *testing.B) {
			ablationPassRate(b, tasks, func(cfg *core.Config) {
				cfg.MaxRetries = retries
			})
		})
	}
}

// BenchmarkAblationTopClusters sweeps how many top clusters refinement
// touches.
func BenchmarkAblationTopClusters(b *testing.B) {
	tasks := benchTasks(8)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("top_%d", k), func(b *testing.B) {
			ablationPassRate(b, tasks, func(cfg *core.Config) {
				cfg.TopClusters = k
			})
		})
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------------

// BenchmarkParser measures parsing of a representative sequential golden.
func BenchmarkParser(b *testing.B) {
	src := benchTasks(1)[120].Golden
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimulator measures a dense verification trace run on one backend.
func benchSimulator(b *testing.B, taskIdx int, backend testbench.Backend) {
	b.Helper()
	task := benchTasks(1)[taskIdx]
	src, err := parser.Parse(task.Golden)
	if err != nil {
		b.Fatal(err)
	}
	st := testbench.NewGenerator(3).Verification(task.Ifc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := testbench.RunBackend(src, eval.TopModule, st, backend)
		if tr.Err != nil {
			b.Fatal(tr.Err)
		}
	}
}

// BenchmarkSimulatorComb measures an exhaustive combinational trace run on
// the interpreter (the pre-compilation baseline).
func BenchmarkSimulatorComb(b *testing.B) { benchSimulator(b, 44, testbench.BackendInterpreter) }

// BenchmarkSimulatorCombCompiled is the same trace run on the compiled
// backend (steady-state: the design is already in the elaboration cache).
func BenchmarkSimulatorCombCompiled(b *testing.B) { benchSimulator(b, 44, testbench.BackendCompiled) }

// BenchmarkSimulatorSeq measures a clocked multi-case trace run on the
// interpreter, which re-elaborates per test case.
func BenchmarkSimulatorSeq(b *testing.B) { benchSimulator(b, 120, testbench.BackendInterpreter) }

// BenchmarkSimulatorSeqCompiled is the same clocked run on the compiled
// backend, which re-instantiates per test case with a snapshot copy.
func BenchmarkSimulatorSeqCompiled(b *testing.B) { benchSimulator(b, 120, testbench.BackendCompiled) }

// BenchmarkCompile measures a cold Compile (elaborate + lower) of a
// representative sequential golden.
func BenchmarkCompile(b *testing.B) {
	task := benchTasks(1)[120]
	src, err := parser.Parse(task.Golden)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Compile(src, eval.TopModule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCacheHit measures the steady-state cost of CompileCached
// on a warm cache (canonical hash + LRU lookup) plus engine instantiation —
// the per-candidate overhead duplicate candidates pay.
func BenchmarkCompileCacheHit(b *testing.B) {
	task := benchTasks(1)[120]
	src, err := parser.Parse(task.Golden)
	if err != nil {
		b.Fatal(err)
	}
	cache := sim.NewCompileCache(8)
	if _, err := cache.Get(src, eval.TopModule); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := cache.Get(src, eval.TopModule)
		if err != nil {
			b.Fatal(err)
		}
		d.NewEngine()
	}
}

// BenchmarkEngineTick measures raw steady-state clock-cycle throughput of
// the register-file engine on a representative sequential golden. With the
// destination-passing kernels this reports 0 allocs/op — the regression
// tests in internal/sim/alloc_test.go enforce it.
func BenchmarkEngineTick(b *testing.B) {
	task := benchTasks(1)[120]
	src, err := parser.Parse(task.Golden)
	if err != nil {
		b.Fatal(err)
	}
	d, err := sim.Compile(src, eval.TopModule)
	if err != nil {
		b.Fatal(err)
	}
	en := d.NewEngine()
	if task.Ifc.Reset != "" {
		rv := uint64(1)
		if task.Ifc.ResetActiveLow {
			rv = 0
		}
		if err := en.SetInputUint(task.Ifc.Reset, rv); err != nil {
			b.Fatal(err)
		}
		if err := en.Tick(task.Ifc.Clock); err != nil {
			b.Fatal(err)
		}
		if err := en.SetInputUint(task.Ifc.Reset, 1-rv); err != nil {
			b.Fatal(err)
		}
	}
	ins := task.Ifc.DataInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			if err := en.SetInputUint(in.Name, uint64(i)*0x9E3779B9); err != nil {
				b.Fatal(err)
			}
		}
		if err := en.Tick(task.Ifc.Clock); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineVFocus measures one full VFocus run on one task.
func BenchmarkPipelineVFocus(b *testing.B) {
	task := benchTasks(1)[100]
	profile, err := llm.ProfileByName("deepseek-r1")
	if err != nil {
		b.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 5, []eval.Task{task})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantVFocus, profile.Name)
	cfg.Samples = 20
	cfg.RetryBaseDelay = 0
	pipe := core.New(client, cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Run(context.Background(), task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineVFocusWorkers is the same VFocus run with the ranking
// stage's simulate-and-fingerprint loop spread over every core (results are
// bit-identical to the sequential run; see core.TestRankWorkersDeterministic).
func BenchmarkPipelineVFocusWorkers(b *testing.B) {
	task := benchTasks(1)[100]
	profile, err := llm.ProfileByName("deepseek-r1")
	if err != nil {
		b.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 5, []eval.Task{task})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantVFocus, profile.Name)
	cfg.Samples = 20
	cfg.RetryBaseDelay = 0
	cfg.Workers = core.DefaultWorkers()
	pipe := core.New(client, cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Run(context.Background(), task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures one simulated-LLM completion (mutation +
// printing dominated).
func BenchmarkGenerate(b *testing.B) {
	task := benchTasks(1)[90]
	profile, err := llm.ProfileByName("qwq-32b")
	if err != nil {
		b.Fatal(err)
	}
	client, err := llm.NewSimClient(profile, 5, []eval.Task{task})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, gerr := client.Generate(context.Background(), llm.GenerateRequest{
			TaskID:      task.ID,
			SampleIndex: i,
		})
		if gerr != nil && gerr != context.Canceled {
			// Transient errors are part of the simulated behavior.
			continue
		}
	}
}

// BenchmarkSuiteGeneration measures building the full 156-task benchmark.
func BenchmarkSuiteGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(eval.Suite()); got != eval.SuiteSize {
			b.Fatalf("suite size %d", got)
		}
	}
}
