// Package repro is a from-scratch Go reproduction of "VFocus: Better
// Verilog Generation from Large Language Model via Focused Reasoning"
// (SOCC 2025): the three-stage VFocus pipeline, the VRank and random-pick
// baselines, and every substrate the paper depends on — a Verilog front-end
// and four-state event-driven simulator, a 156-task VerilogEval-Human-like
// benchmark, automatic printing testbenches, and a simulated reasoning LLM.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The root package
// hosts only the benchmark harness (bench_test.go); the implementation
// lives under internal/.
package repro
