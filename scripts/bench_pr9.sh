#!/usr/bin/env bash
# Pinned PR 9 persistent-store benchmark protocol (BENCH_PR9.json).
#
# Measures the warm-restart rank: a fresh process pointed at a disk store
# populated by a PREVIOUS process ranks the Table I pool with zero
# simulations. Invariants this script exists to pin:
#   - The store directory is populated once, by its own fresh process, before
#     any measurement. Population is not timed.
#   - Each measurement runs SOLO in a fresh `go test` process. In-process
#     repeats are memo-warm by design; only a fresh process proves the
#     restart story (empty memo, every fingerprint off disk on first touch).
#   - Warm rows run with VFOCUS_BENCH_EXPECT_WARM=1, so the benchmark itself
#     FAILS if even one fingerprint simulated — the speedup can never come
#     from accidentally-cold measurements.
#   - Rounds interleave /cold and /disk-warm and the headline speedup is the
#     median of PER-ROUND ratios: adjacent runs see similar machine load, so
#     load drift cancels out of the ratio.
#   - Fixed -benchtime (iteration count, not wall time) so every run does
#     identical work; median of 3 rounds.
#
# Usage: scripts/bench_pr9.sh [output.json]
# Writes the machine-readable result row set to output.json (default
# /tmp/bench_pr9_raw.json) and echoes progress to stderr. Exits non-zero if
# the disk-warm speedup over /cold lands under the 5x acceptance gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-1000x}
ROUNDS=${ROUNDS:-3}
MIN_SPEEDUP=${MIN_SPEEDUP:-5.0}
OUT=${1:-/tmp/bench_pr9_raw.json}

STOREDIR=$(mktemp -d /tmp/vfocus-bench-store.XXXXXX)
trap 'rm -rf "$STOREDIR"' EXIT

run_once() { # $1 row name, $2.. extra env -> "ns bytes allocs"
    local name=$1
    shift
    local line
    line=$(env "$@" go test ./internal/core/ -run '^$' -bench "^BenchmarkRankStage/${name}\$" \
        -benchtime "$BENCHTIME" -benchmem 2>/dev/null |
        awk -v want="BenchmarkRankStage/${name}" \
            '$1 == want || index($1, want "-") == 1 {print $3, $5, $7}')
    [ -n "$line" ] || { echo "no output for row ${name}" >&2; exit 1; }
    echo "$line"
}

median() { sort -n | awk '{a[NR]=$1} END{print a[int((NR+1)/2)]}'; }

echo "populating disk store at ${STOREDIR} (fresh process, untimed)..." >&2
read -r pns pby pal <<<"$(run_once disk-warm VFOCUS_BENCH_STORE_DIR="$STOREDIR")"
echo "  populate pass: ${pns} ns/op (includes simulation + store writes)" >&2

rows=(cold disk-warm)
declare -A NSRUNS BYRUNS ALRUNS
ratios=""
for ((r = 1; r <= ROUNDS; r++)); do
    echo "round ${r}/${ROUNDS} (benchtime ${BENCHTIME}, one fresh process per row)..." >&2
    declare -A round_ns
    for row in "${rows[@]}"; do
        if [ "$row" = disk-warm ]; then
            read -r ns by al <<<"$(run_once disk-warm \
                VFOCUS_BENCH_STORE_DIR="$STOREDIR" VFOCUS_BENCH_EXPECT_WARM=1)"
        else
            read -r ns by al <<<"$(run_once "$row")"
        fi
        echo "  ${row}: ${ns} ns/op, ${by} B/op, ${al} allocs/op" >&2
        NSRUNS[$row]+="${ns} "
        BYRUNS[$row]+="${by} "
        ALRUNS[$row]+="${al} "
        round_ns[$row]=$ns
    done
    ratio=$(awk -v c="${round_ns[cold]}" -v w="${round_ns[disk-warm]}" 'BEGIN{printf "%.3f", c/w}')
    echo "  round ${r} warm-restart speedup (cold/disk-warm): ${ratio}x" >&2
    ratios+="${ratio} "
done

declare -A NS BY AL
for row in "${rows[@]}"; do
    NS[$row]=$(printf '%s\n' ${NSRUNS[$row]} | median)
    BY[$row]=$(printf '%s\n' ${BYRUNS[$row]} | median)
    AL[$row]=$(printf '%s\n' ${ALRUNS[$row]} | median)
done
speedup=$(printf '%s\n' $ratios | median)

{
    echo '{'
    echo "  \"benchtime\": \"${BENCHTIME}\", \"rounds\": ${ROUNDS},"
    for row in "${rows[@]}"; do
        key=${row//-/_}
        echo "  \"${key}\": {\"ns_per_op\": ${NS[$row]}, \"bytes_per_op\": ${BY[$row]}, \"allocs_per_op\": ${AL[$row]}},"
    done
    echo "  \"per_round_warm_speedups\": [$(printf '%s\n' $ratios | paste -sd, -)],"
    echo "  \"disk_warm_speedup_vs_cold\": ${speedup}"
    echo '}'
} >"$OUT"
echo "wrote ${OUT} (disk-warm speedup over cold: median of per-round ratios = ${speedup}x)" >&2

awk -v s="$speedup" -v min="$MIN_SPEEDUP" 'BEGIN{exit !(s >= min)}' || {
    echo "FAIL: disk-warm speedup ${speedup}x is under the ${MIN_SPEEDUP}x gate" >&2
    exit 1
}
