#!/usr/bin/env bash
# Pinned PR 7 rank-stage benchmark protocol (BENCH_PR7.json).
#
# Invariants this script exists to pin:
#   - Each measurement runs SOLO in a fresh `go test` process. The cold rows
#     derive their per-iteration stimulus seeds from the iteration index, so
#     a second in-process run (-count) would restart at the same seeds and
#     silently rehit the stimulus memo — only a fresh process is cold.
#   - Fixed -benchtime (iteration count, not wall time) so every run does
#     identical work.
#   - Rounds interleave the rows (fingerprint, cold, cold-perlane per round)
#     and the SoA-vs-perlane speedup is the median of PER-ROUND ratios:
#     adjacent runs see similar machine load, so slow load drift cancels out
#     of the ratio instead of skewing whichever row ran later.
#   - Median of 3 rounds; single runs on shared machines jitter ±10%.
#
# Usage: scripts/bench_pr7.sh [output.json]
# Writes the machine-readable result row set to output.json (default
# /tmp/bench_pr7_raw.json) and echoes progress to stderr.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-1000x}
ROUNDS=${ROUNDS:-3}
OUT=${1:-/tmp/bench_pr7_raw.json}

rows=(fingerprint cold cold-perlane)

run_once() { # $1 row name -> "ns bytes allocs" from one fresh process
    local name=$1 line
    line=$(go test ./internal/core/ -run '^$' -bench "^BenchmarkRankStage/${name}\$" \
        -benchtime "$BENCHTIME" -benchmem 2>/dev/null |
        awk -v want="BenchmarkRankStage/${name}" \
            '$1 == want || index($1, want "-") == 1 {print $3, $5, $7}')
    [ -n "$line" ] || { echo "no output for row ${name}" >&2; exit 1; }
    echo "$line"
}

median() { sort -n | awk '{a[NR]=$1} END{print a[int((NR+1)/2)]}'; }

declare -A NSRUNS BYRUNS ALRUNS
ratios=""
for ((r = 1; r <= ROUNDS; r++)); do
    echo "round ${r}/${ROUNDS} (benchtime ${BENCHTIME}, one fresh process per row)..." >&2
    declare -A round_ns
    for row in "${rows[@]}"; do
        read -r ns by al <<<"$(run_once "$row")"
        echo "  ${row}: ${ns} ns/op, ${by} B/op, ${al} allocs/op" >&2
        NSRUNS[$row]+="${ns} "
        BYRUNS[$row]+="${by} "
        ALRUNS[$row]+="${al} "
        round_ns[$row]=$ns
    done
    ratio=$(awk -v p="${round_ns[cold-perlane]}" -v s="${round_ns[cold]}" 'BEGIN{printf "%.3f", p/s}')
    echo "  round ${r} cold speedup (perlane/soa): ${ratio}x" >&2
    ratios+="${ratio} "
done

declare -A NS BY AL
for row in "${rows[@]}"; do
    NS[$row]=$(printf '%s\n' ${NSRUNS[$row]} | median)
    BY[$row]=$(printf '%s\n' ${BYRUNS[$row]} | median)
    AL[$row]=$(printf '%s\n' ${ALRUNS[$row]} | median)
done
speedup=$(printf '%s\n' $ratios | median)

{
    echo '{'
    echo "  \"benchtime\": \"${BENCHTIME}\", \"rounds\": ${ROUNDS},"
    for row in "${rows[@]}"; do
        echo "  \"${row}\": {\"ns_per_op\": ${NS[$row]}, \"bytes_per_op\": ${BY[$row]}, \"allocs_per_op\": ${AL[$row]}},"
    done
    echo "  \"per_round_cold_speedups\": [$(printf '%s\n' $ratios | paste -sd, -)],"
    echo "  \"cold_speedup_soa_vs_perlane\": ${speedup}"
    echo '}'
} >"$OUT"
echo "wrote ${OUT} (cold SoA speedup over per-lane: median of per-round ratios = ${speedup}x)" >&2
