#!/usr/bin/env bash
# Smoke-test the vfocusd daemon end to end, from outside the process:
#
#   1. start vfocusd on a private port
#   2. submit a (golden, buggy-candidate-pool) job and stream it to a
#      completed terminal event with at least one ranked cluster
#   3. submit a second job and cancel it mid-flight by ID
#   4. SIGTERM the daemon and require a clean drain (exit code 0)
#
# In-tree tests (internal/serve) already drive the same paths with
# deterministic fault injection and a zero-goroutine-leak check; this script
# is the black-box complement proving the built binary wires them together.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
LOG="$(mktemp)"
BIN="$(mktemp -d)/vfocusd"

go build -o "$BIN" ./cmd/vfocusd

# VFOCUSD_SLOW_BATCH_MS throttles every rank batch through the daemon's
# fault-injection harness so the cancel below reliably lands while the job
# is live; it does not change any result, only pacing.
VFOCUSD_SLOW_BATCH_MS=300 \
    "$BIN" -addr "127.0.0.1:${PORT}" -workers 1 -queue-cap 8 -drain-timeout 8s >"$LOG" 2>&1 &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; cat "$LOG"' EXIT

for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

# --- happy path: explicit candidate pool, streamed to completion ----------
cand() { printf 'module top_module(\\n input a,\\n input b,\\n output y\\n);\\n assign y = %s;\\nendmodule\\n' "$1"; }
SUBMIT=$(curl -fsS -X POST "$BASE/jobs" -d "{
  \"id\": \"smoke-ok\",
  \"task_id\": \"cmb_gate_00_and2\",
  \"seed\": 7,
  \"candidates\": [\"$(cand 'a & b')\", \"$(cand 'a | b')\", \"$(cand 'a | b')\", \"$(cand 'a ^ b')\"]
}")
echo "submit: $SUBMIT"
STREAM=$(curl -fsS --max-time 60 "$BASE/jobs/smoke-ok/stream")
echo "$STREAM"
grep -q '"type":"cluster"' <<<"$STREAM" || { echo "FAIL: no cluster events"; exit 1; }
tail -n1 <<<"$STREAM" | grep -q '"status":"completed"' || { echo "FAIL: job did not complete"; exit 1; }

# --- cancel mid-flight ----------------------------------------------------
# With the batch throttle on and one worker, the generated-pool job stays
# mid-compute for seconds; the queued job behind it is cancelled while
# provably live, then the running one is cancelled mid-batch.
curl -fsS -X POST "$BASE/jobs" -d '{"id":"smoke-busy","task_id":"seq_cnt_00_bin4","samples":200,"seed":11}' >/dev/null
curl -fsS -X POST "$BASE/jobs" -d '{"id":"smoke-cancel","task_id":"seq_cnt_00_bin4","samples":200,"seed":13}' >/dev/null
# Cancel the running job first (mid-batch), then the queued one; both are
# provably live at cancel time. Streams are drained afterwards — the queued
# job's terminal event only lands once a worker pops it.
for ID in smoke-busy smoke-cancel; do
    CANCELLED=$(curl -fsS -X POST "$BASE/jobs/$ID/cancel")
    echo "cancel $ID: $CANCELLED"
    grep -q '"cancelled":true' <<<"$CANCELLED" || { echo "FAIL: $ID was not live at cancel time"; exit 1; }
done
for ID in smoke-busy smoke-cancel; do
    TERM_EV=$(curl -fsS --max-time 60 "$BASE/jobs/$ID/stream" | tail -n1)
    echo "terminal $ID: $TERM_EV"
    grep -q '"status":"cancelled"' <<<"$TERM_EV" || { echo "FAIL: cancelled job $ID did not report cancelled"; exit 1; }
done

# --- graceful shutdown ----------------------------------------------------
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "FAIL: vfocusd exited non-zero on SIGTERM"
    exit 1
fi
trap 'cat "$LOG"' EXIT
grep -q "drained cleanly" "$LOG" || { echo "FAIL: no clean-drain log line"; exit 1; }

# --- warm restart via the persistent result store -------------------------
# Run the same job in two daemon processes sharing one -store-dir. The first
# simulates and publishes fingerprints; the second must complete the job with
# ZERO simulations — every fingerprint comes off disk — which /statsz makes
# externally observable.
STOREDIR="$(mktemp -d)"
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$STOREDIR"; cat "$LOG"' EXIT

start_store_daemon() {
    "$BIN" -addr "127.0.0.1:${PORT}" -workers 1 -store disk -store-dir "$STOREDIR" >"$LOG" 2>&1 &
    PID=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
        sleep 0.1
    done
    curl -fsS "$BASE/healthz" >/dev/null
}

run_store_job() { # $1 job id -> streams the fixed job to completion
    curl -fsS -X POST "$BASE/jobs" -d "{
      \"id\": \"$1\",
      \"task_id\": \"cmb_gate_00_and2\",
      \"seed\": 7,
      \"candidates\": [\"$(cand 'a & b')\", \"$(cand 'a | b')\", \"$(cand 'a | b')\", \"$(cand 'a ^ b')\"]
    }" >/dev/null
    STREAM=$(curl -fsS --max-time 60 "$BASE/jobs/$1/stream")
    tail -n1 <<<"$STREAM" | grep -q '"status":"completed"' || { echo "FAIL: $1 did not complete"; exit 1; }
}

statsz() { # $1 field name -> value
    curl -fsS "$BASE/statsz" | sed -E "s/.*\"$1\":([0-9]+).*/\1/"
}

start_store_daemon
run_store_job smoke-store-cold
COLD_SIMS=$(statsz fp_sims)
COLD_PUTS=$(statsz store_puts)
echo "cold daemon: fp_sims=$COLD_SIMS store_puts=$COLD_PUTS"
# The shipped binary wires the LLM-backend and remote-tier counters into
# /statsz (default backend: the hermetic simulated client).
curl -fsS "$BASE/statsz" | grep -q '"llm_backend":"sim"' \
    || { echo "FAIL: /statsz missing llm_backend"; exit 1; }
curl -fsS "$BASE/statsz" | grep -q '"remote_retries"' \
    || { echo "FAIL: /statsz missing remote-tier counters"; exit 1; }
[ "$COLD_SIMS" -gt 0 ] || { echo "FAIL: cold daemon simulated nothing"; exit 1; }
[ "$COLD_PUTS" -gt 0 ] || { echo "FAIL: cold daemon published nothing to the store"; exit 1; }
kill -TERM "$PID"
wait "$PID" || { echo "FAIL: store daemon exited non-zero on SIGTERM"; exit 1; }

start_store_daemon
run_store_job smoke-store-warm
WARM_SIMS=$(statsz fp_sims)
WARM_HITS=$(statsz store_hits)
echo "warm-restarted daemon: fp_sims=$WARM_SIMS store_hits=$WARM_HITS"
[ "$WARM_SIMS" -eq 0 ] || { echo "FAIL: warm-restarted daemon simulated ($WARM_SIMS sims)"; exit 1; }
[ "$WARM_HITS" -gt 0 ] || { echo "FAIL: warm-restarted daemon reported no store hits"; exit 1; }
kill -TERM "$PID"
wait "$PID" || { echo "FAIL: store daemon exited non-zero on SIGTERM"; exit 1; }

trap 'rm -rf "$STOREDIR"; cat "$LOG"' EXIT
echo "PASS: vfocusd smoke"
